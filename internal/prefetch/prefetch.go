// Package prefetch implements the hardware prefetchers of Table 1:
// next-line prefetching (IL1/DL1/L2) and the IP-based stride prefetcher
// (DL1/L2) in the style of Intel's Smart Memory Access.
package prefetch

import (
	"fmt"

	"stackedsim/internal/mem"
)

// Stats aggregates one cache level's prefetcher activity: how many
// candidates each predictor produced, how many prefetches were actually
// injected, and how many of the fetched lines demand traffic touched
// before eviction. The owning cache maintains the counts; the type
// lives here so every level reports prefetching in the same shape.
type Stats struct {
	StrideCandidates   uint64 // confident stride predictions consulted
	NextLineCandidates uint64 // next-line fallbacks consulted
	StrideTrained      uint64 // predictor-side confident predictions (Stride.Trained)
	Issued             uint64 // prefetch requests injected into the miss path
	Useful             uint64 // prefetched lines later referenced by demand
	Drops              uint64 // prefetches abandoned (full MSHR, unwound)
}

// Add accumulates o into s (aggregating per-core caches into one
// machine-wide summary).
func (s *Stats) Add(o Stats) {
	s.StrideCandidates += o.StrideCandidates
	s.NextLineCandidates += o.NextLineCandidates
	s.StrideTrained += o.StrideTrained
	s.Issued += o.Issued
	s.Useful += o.Useful
	s.Drops += o.Drops
}

// Accuracy reports the fraction of issued prefetches that demand
// traffic used before eviction (0 when none were issued).
func (s Stats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// NextLine returns the line-aligned address immediately following the
// line containing addr.
func NextLine(addr mem.Addr, lineBytes int) mem.Addr {
	return (addr &^ mem.Addr(lineBytes-1)) + mem.Addr(lineBytes)
}

type strideEntry struct {
	pc     uint64
	last   mem.Addr
	stride int64
	conf   int8
	valid  bool
}

// confThreshold is the confidence at which predictions are emitted.
const confThreshold = 2

// Stride is an IP-indexed stride predictor: a direct-mapped table keyed
// by load PC that learns a per-instruction stride and, once confident,
// predicts the next address.
type Stride struct {
	entries []strideEntry
	// Trained counts observations that produced a prediction.
	Trained uint64
}

// NewStride returns a predictor with the given table size.
func NewStride(entries int) *Stride {
	if entries < 1 {
		panic(fmt.Sprintf("prefetch: stride table size %d must be >= 1", entries))
	}
	return &Stride{entries: make([]strideEntry, entries)}
}

// Observe records one access by the load at pc and, when the entry is
// confident, returns the predicted next address.
func (s *Stride) Observe(pc uint64, addr mem.Addr) (next mem.Addr, ok bool) {
	e := &s.entries[pc%uint64(len(s.entries))]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, last: addr, valid: true}
		return 0, false
	}
	stride := int64(addr) - int64(e.last)
	e.last = addr
	if stride == 0 {
		return 0, false
	}
	if stride == e.stride {
		if e.conf < confThreshold {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	if e.conf >= confThreshold {
		s.Trained++
		return mem.Addr(int64(addr) + stride), true
	}
	return 0, false
}
