// Package stackedsim is a from-scratch, cycle-level Go reproduction of
// Gabriel H. Loh, "3D-Stacked Memory Architectures for Multi-Core
// Processors" (ISCA 2008).
//
// The repository root holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see bench_test.go and
// DESIGN.md's per-experiment index); the simulator itself lives under
// internal/ and the runnable entry points under cmd/ and examples/.
//
// Start with README.md for orientation, DESIGN.md for the system
// inventory and documented substitutions, and EXPERIMENTS.md for the
// paper-versus-measured record.
package stackedsim
