// Command stacksim runs one simulation: a memory organization preset
// (optionally tweaked) against a Table 2b mix or an ad-hoc list of
// benchmarks, and prints the collected metrics.
//
// Usage:
//
//	stacksim -config 3D-fast -mix VH1
//	stacksim -config 3D-fast -mix H1,H2,VH1 -j 4
//	stacksim -config quadmc -bench S.copy,mcf -measure 1000000
//	stacksim -config 3D-fast -stack-mode cache -stack-cap-mb 64 -mix H1
//	stacksim -config quadmc -mix VH1 -telemetry-dir out/ -sample-every 1000 -trace-events
//	stacksim -list
//
// A comma-separated -mix runs a sweep: the mixes fan out over a worker
// pool (-j, default GOMAXPROCS) and report in the order given, one
// summary line per mix. Sweeps exclude -telemetry-dir and -traces,
// which describe a single run.
//
// With -telemetry-dir the run writes manifest.json, timeseries.csv,
// timeseries.jsonl, distributions.json, attrib.json, powerthermal.json
// and (with -trace-events) trace.json into the directory, and prints
// the memory-latency attribution table (disable with -attrib=false)
// plus the power/thermal report with the per-bank activity heatmap and
// per-layer temperature trajectory (disable with -power=false).
// -monitor-addr serves /metrics, /snapshot, /healthz and pprof live
// during the run, plus the run ledger endpoints (/runs, /compare,
// /dashboard) when -ledger-dir is set; see docs/OBSERVABILITY.md.
//
// With -ledger-dir every completed run is appended to a
// content-addressed run ledger keyed by (config, workload, seed,
// simulator version). Re-running a recorded combination is served from
// the ledger without simulating — unless -telemetry-dir is also set,
// since the telemetry artifacts only exist for a live run (the run is
// then re-simulated and its record deduplicated). Sweeps record and
// dedupe per mix. Inspect and gate recorded runs with cmd/statsdiff
// -ledger-dir.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"stackedsim/internal/attrib"
	"stackedsim/internal/config"
	"stackedsim/internal/core"
	"stackedsim/internal/cpu"
	"stackedsim/internal/fault"
	"stackedsim/internal/ledger"
	"stackedsim/internal/monitor"
	"stackedsim/internal/telemetry"
	"stackedsim/internal/trace"
	"stackedsim/internal/workload"
)

func preset(name string) (*config.Config, bool) {
	switch strings.ToLower(name) {
	case "2d":
		return config.Baseline2D(), true
	case "3d":
		return config.Simple3D(), true
	case "3d-wide", "wide":
		return config.Wide3D(), true
	case "3d-fast", "fast":
		return config.Fast3D(), true
	case "dualmc":
		return config.DualMC(), true
	case "quadmc":
		return config.QuadMC(), true
	}
	return nil, false
}

func main() {
	var (
		cfgName = flag.String("config", "3D-fast", "preset: 2D, 3D, 3D-wide, 3D-fast, dualMC, quadMC")
		mixName = flag.String("mix", "", "Table 2b mix to run (H1..M3)")
		benches = flag.String("bench", "", "comma-separated benchmarks (alternative to -mix)")
		warmup  = flag.Int64("warmup", 200_000, "warmup cycles")
		measure = flag.Int64("measure", 600_000, "measured cycles")
		mshrX   = flag.Int("mshr", 1, "L2 MSHR capacity multiplier (1,2,4,8)")
		vbf     = flag.Bool("vbf", false, "use the VBF-based L2 MSHR")
		dynamic = flag.Bool("dynamic", false, "enable dynamic MSHR resizing")
		seed    = flag.Int64("seed", 1, "workload seed")
		cwf     = flag.Bool("cwf", false, "critical-word-first read delivery")
		smart   = flag.Bool("smartrefresh", false, "skip refreshes for access-restored rows")
		unified = flag.Bool("unified-mshr", false, "one shared L2 MSHR file instead of per-MC banks")

		stackMode   = flag.String("stack-mode", "memory", "stacked-DRAM use: memory (all of main memory), cache, or memcache (hot region + cache)")
		stackCapMB  = flag.Int("stack-cap-mb", 64, "stack capacity in MB (cache/memcache modes)")
		stackWays   = flag.Int("stack-ways", 16, "stack cache associativity")
		stackSRAM   = flag.Bool("stack-tags-sram", true, "tag directory in SRAM (false = tags stored in the stacked DRAM)")
		stackTagLat = flag.Int("stack-tag-lat", 2, "SRAM tag-probe latency in CPU cycles")
		stackFill   = flag.Int("stack-fill-bytes", 0, "fill/allocation granularity in bytes (0 = one page)")
		stackHot    = flag.Float64("stack-hot-frac", 0.5, "memcache: fraction of the stack that is direct-addressed hot memory")
		cohMode  = flag.String("coherence", "", "coherence mode: shared (seed default) or mesi (private per-core L2s under a directory protocol)")
		topology = flag.String("topology", "", "interconnect: bus (seed default) or mesh (2D mesh NoC; required by -coherence mesi)")
		cores    = flag.Int("cores", 0, "override the core count (0 = preset; counts > 4 need -coherence mesi)")

		traces      = flag.String("traces", "", "comma-separated trace files (from tracegen), one per core")
		list        = flag.Bool("list", false, "list benchmarks and mixes, then exit")
		jobs        = flag.Int("j", 0, "concurrent simulations for a multi-mix sweep (0 = GOMAXPROCS)")

		faultScenario = flag.String("fault-scenario", "", "JSON fault scenario to inject into the memory hierarchy (see docs/ROBUSTNESS.md)")
		faultSeed     = flag.Int64("fault-seed", 0, "override the scenario's fault-stream seed (0 keeps the scenario/run default)")
		checkpoint    = flag.String("checkpoint", "", "write periodic replay checkpoints to this file (single run only)")
		ckptEvery     = flag.Int64("checkpoint-every", 1_000_000, "cycles between checkpoint writes")
		resume        = flag.String("resume", "", "resume from this checkpoint file; the run's config and workload come from the checkpoint")
		deadline      = flag.Duration("deadline", 0, "wall-clock limit for the run (0 = none); a cut-off run still reports and exports")

		telemetryDir = flag.String("telemetry-dir", "", "directory for telemetry exports (enables telemetry)")
		sampleEvery  = flag.Int64("sample-every", 1000, "time-series sample interval in cycles")
		traceEvents  = flag.Bool("trace-events", false, "emit Chrome trace_event JSON for sampled request lifecycles")
		traceSample  = flag.Int("trace-sample", 64, "trace 1 in N demand-miss lifecycles")
		attribOn     = flag.Bool("attrib", true, "memory-latency attribution (cycle accounting) when telemetry is enabled")
		powerOn      = flag.Bool("power", true, "power/thermal tracking (per-layer power, transient temperatures) when telemetry is enabled")
		monitorAddr  = flag.String("monitor-addr", "", "serve /metrics, /snapshot, /healthz and pprof on this address during the run")
		ledgerDir    = flag.String("ledger-dir", "", "content-addressed run ledger: record completed runs here and serve known (config, workload, seed) runs from it without re-simulating")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()
	validateFlags(*telemetryDir, *sampleEvery, *monitorAddr, *mixName,
		*checkpoint, *resume, *traces, *ckptEvery, *stackMode, *ledgerDir,
		*cohMode, *cores, *faultScenario, *dynamic)

	if *list {
		fmt.Println("benchmarks (Table 2a):")
		for _, s := range workload.Specs {
			fmt.Printf("  %-12s %-9s paper MPKI %6.1f  pattern %s\n", s.Name, s.Suite, s.PaperMPKI, s.Pattern)
		}
		fmt.Println("mixes (Table 2b):")
		for _, m := range workload.Mixes {
			fmt.Printf("  %-4s (%s): %v\n", m.Name, m.Group, m.Benchmarks)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	cfg, ok := preset(*cfgName)
	if !ok {
		fmt.Fprintf(os.Stderr, "stacksim: unknown config %q\n", *cfgName)
		os.Exit(2)
	}
	if *mshrX != 1 || *vbf || *dynamic {
		kind := config.MSHRIdealCAM
		if *vbf {
			kind = config.MSHRVBF
		}
		cfg = cfg.WithMSHR(*mshrX, kind, *dynamic)
	}
	if *stackMode != "memory" {
		mode, err := config.ParseStackMode(*stackMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stacksim: %v\n", err)
			os.Exit(2)
		}
		cfg = cfg.WithStackCache(mode, *stackCapMB)
		cfg.StackWays = *stackWays
		cfg.StackTagsInSRAM = *stackSRAM
		cfg.StackTagLatency = *stackTagLat
		if *stackFill > 0 {
			cfg.StackFillBytes = *stackFill
		}
		if mode == config.StackMemCache {
			cfg.StackHotFrac = *stackHot
		}
	}
	if *cohMode != "" || *topology != "" || *cores > 0 {
		cfg = applyManycore(cfg, *cohMode, *topology, *cores)
	}
	cfg.WarmupCycles = *warmup
	cfg.MeasureCycles = *measure
	cfg.Seed = *seed
	cfg.CriticalWordFirst = *cwf
	cfg.SmartRefresh = *smart
	cfg.MSHRUnified = *unified

	if *faultScenario != "" {
		sc, err := fault.Load(*faultScenario)
		if err != nil {
			fatal(err)
		}
		if *faultSeed != 0 {
			sc.Seed = *faultSeed
		}
		cfg.Faults = sc
		if sc.Name != "" {
			// The scenario participates in the run's identity: sweep memo
			// keys and exported metrics must not collide with fault-free
			// runs of the same organization.
			cfg.Name += "+" + sc.Name
		}
	}

	// SIGINT/SIGTERM (and -deadline) cancel the simulation between cycle
	// chunks; an interrupted run still reports its partial metrics,
	// flushes telemetry, and shuts the monitor down cleanly.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	var led *ledger.Ledger
	if *ledgerDir != "" {
		var lerr error
		if led, lerr = ledger.Open(*ledgerDir); lerr != nil {
			fatal(lerr)
		}
	}

	if strings.Contains(*mixName, ",") {
		if *telemetryDir != "" || *traces != "" {
			fmt.Fprintln(os.Stderr, "stacksim: -telemetry-dir and -traces describe a single run; use one -mix")
			os.Exit(2)
		}
		runSweep(ctx, cfg, strings.Split(*mixName, ","), *jobs, *warmup, *measure, led)
		return
	}
	if *jobs > 1 {
		fmt.Fprintln(os.Stderr, "stacksim: -j only applies to a multi-mix sweep (comma-separated -mix)")
		os.Exit(2)
	}

	var tel *telemetry.Telemetry
	if *telemetryDir != "" {
		tel = telemetry.New(telemetry.Options{
			Dir:         *telemetryDir,
			SampleEvery: *sampleEvery,
			TraceEvents: *traceEvents,
			TraceSample: *traceSample,
		})
	}

	var sys *core.System
	var err error
	var labels, workloadKey []string
	if *resume != "" {
		cp, lerr := core.LoadCheckpoint(*resume)
		if lerr != nil {
			fatal(lerr)
		}
		cfg = cp.Config
		labels = cp.Benchmarks
		sys, err = core.NewSystemFromCheckpoint(cp)
		fmt.Printf("resume: %s at cycle %d (%s)\n", *resume, cp.Cycle, cfg.Name)
	} else if *traces != "" {
		files := strings.Split(*traces, ",")
		sources := make([]cpu.UOpSource, len(files))
		for i, path := range files {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			r, err := trace.NewReader(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
			sources[i] = r
		}
		labels = files
		sys, err = core.NewSystemFromSources(cfg, sources, files)
	} else {
		switch {
		case *mixName != "":
			mix, ok := workload.MixByName(*mixName)
			if !ok {
				fmt.Fprintf(os.Stderr, "stacksim: unknown mix %q\n", *mixName)
				os.Exit(2)
			}
			labels = mix.Benchmarks[:]
			// The canonical mix name keys the ledger the same way the
			// experiment harness does, so a stacksim run and a sweep run
			// of the same organization dedupe against each other.
			workloadKey = []string{"mix:" + mix.Name}
		case *benches != "":
			labels = strings.Split(*benches, ",")
			// A coherent many-core run with a single benchmark means
			// "run it on every core" (the -exp manycore convention);
			// seed-mode runs keep the one-core-per-entry behavior.
			if cfg.Coherent() && len(labels) == 1 && cfg.Cores > 1 {
				uniform := make([]string, cfg.Cores)
				for i := range uniform {
					uniform[i] = labels[0]
				}
				labels = uniform
			}
			for _, b := range labels {
				workloadKey = append(workloadKey, "bench:"+b)
			}
		default:
			fmt.Fprintln(os.Stderr, "stacksim: need -mix or -bench (see -list)")
			os.Exit(2)
		}
		// A recorded run is served from the ledger instead of simulated
		// — but only when no telemetry was asked for: the time-series and
		// trace artifacts exist only for a live run.
		if led != nil && *telemetryDir == "" {
			if m, rec, ok := ledgerRecall(led, cfg, workloadKey); ok {
				fmt.Printf("ledger: cache hit %s (recorded %s, %.2fs wall); not re-simulating\n",
					rec.Manifest.ID, rec.Manifest.StartedAt, rec.Manifest.WallSeconds)
				report(cfg, m)
				return
			}
		}
		sys, err = core.NewSystem(cfg, labels)
	}
	if err != nil {
		fatal(err)
	}
	// Power/thermal tracking rides the telemetry registry. Attached
	// before the sampler so each closed window's power.*/thermal.*
	// gauges are already published when the time-series samples them.
	var pt *core.PowerThermal
	if tel != nil && *powerOn {
		pt = sys.AttachPowerThermal(tel.Reg(), *sampleEvery)
	}
	sys.AttachTelemetry(tel)

	// Cycle accounting rides on the telemetry registry; its nil-safe
	// tags make -attrib=false (or no telemetry at all) cost one nil
	// check per demand miss.
	var col *attrib.Collector
	if tel != nil && *attribOn {
		col = sys.NewAttribCollector(tel.Reg())
		sys.AttachAttrib(col)
	}

	// The live monitor snapshots the registry from the simulation
	// goroutine at the sampling cadence; HTTP handlers only ever read
	// the published snapshot, so a slow scraper cannot block a cycle.
	var mon *monitor.Server
	if *monitorAddr != "" {
		mon = &monitor.Server{Registry: tel.Reg(), Ledger: led}
		if col != nil {
			mon.AttribFn = col.Breakdown
		}
		if *checkpoint != "" {
			// A checkpointed run's crash-recovery story depends on the
			// checkpoint directory staying writable; surface trouble on
			// /healthz as degraded instead of only failing at the next
			// periodic write.
			dir := filepath.Dir(*checkpoint)
			mon.HealthFn = func() []monitor.HealthCheck {
				check := monitor.HealthCheck{Name: "checkpoint", Status: "ok", Detail: dir}
				if probe, err := os.CreateTemp(dir, ".healthz-*"); err != nil {
					check.Status = "degraded"
					check.Detail = err.Error()
				} else {
					probe.Close()
					os.Remove(probe.Name())
				}
				return []monitor.HealthCheck{check}
			}
		}
		if pt != nil {
			// Collect runs on the simulation goroutine, so reading the
			// tracker here is race-free.
			mon.PowerThermalFn = func() *monitor.PowerThermal {
				return powerThermalWire(pt.Summary())
			}
		}
		if err := mon.Start(*monitorAddr); err != nil {
			fatal(err)
		}
		defer func() {
			// Graceful: in-flight scrapes of the final snapshot finish.
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			mon.Shutdown(sctx) //nolint:errcheck // best-effort on exit
		}()
		fmt.Printf("monitor: serving /metrics /snapshot /dashboard /healthz and /debug/pprof on %s\n", mon.Addr())
		// -sample-every 0 disables the time-series but the monitor
		// still needs a snapshot cadence; fall back to the default.
		collectEvery := int(*sampleEvery)
		if collectEvery < 1 {
			collectEvery = 1000
		}
		sys.Engine.RegisterEvery(collectEvery, 0, mon)
	}

	started := time.Now()
	var m core.Metrics
	var runErr error
	if *checkpoint != "" || *resume != "" {
		path := *checkpoint
		if path == "" {
			path = *resume
		}
		m, runErr = sys.RunCheckpointed(ctx, core.CheckpointPlan{
			Every: *ckptEvery, Path: path, Resume: *resume != "",
		})
		if runErr != nil && ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "stacksim: interrupted at cycle %d; checkpoint saved to %s\n", sys.Engine.Now(), path)
		}
	} else {
		m, runErr = sys.RunContext(ctx)
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "stacksim: interrupted at cycle %d; metrics below are partial\n", sys.Engine.Now())
		}
	}
	if runErr != nil && ctx.Err() == nil {
		// Not a cancellation: a bad checkpoint or a failed write.
		fatal(runErr)
	}
	report(cfg, m)
	engineReport(sys)
	if mon != nil {
		// Publish the end-of-run state for scrapes that outlive the run.
		mon.Collect(sys.Engine.Now())
	}
	if col != nil {
		fmt.Print(col.Breakdown().Table())
	}
	if pt != nil {
		fmt.Print(pt.Report())
	}

	// Record the completed run before the telemetry export so the
	// exported manifest's wall time prices the ledger write too (that is
	// what scripts/bench.sh gates). Only finished runs are recorded: a
	// partial result must never be served as the real answer later.
	if led != nil && runErr == nil && len(workloadKey) > 0 {
		recordRun(led, cfg, workloadKey, &m, sys, tel, col, pt, started)
	}

	if tel != nil {
		// Export everything alongside the manifest (the sampler closes
		// its series on the final cycle during Export).
		err := tel.Export(telemetry.Manifest{
			Config:      cfg.Name,
			Seed:        cfg.Seed,
			Workload:    labels,
			Flags:       flagValues(),
			GitDescribe: gitDescribe(),
			StartedAt:   started.UTC().Format(time.RFC3339),
			WallSeconds: time.Since(started).Seconds(),
			Cycles:      int64(sys.Engine.Now()),
		})
		if err != nil {
			fatal(err)
		}
		if col != nil {
			if err := writeAttribJSON(filepath.Join(*telemetryDir, "attrib.json"), col.Breakdown()); err != nil {
				fatal(err)
			}
		}
		if pt != nil {
			if err := writeJSON(filepath.Join(*telemetryDir, "powerthermal.json"), pt.Summary()); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("telemetry: exports written to %s\n", *telemetryDir)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}

	if runErr != nil {
		// Everything useful was flushed above; now fail the invocation.
		// os.Exit skips the deferred graceful shutdown, so do it here
		// (Shutdown is idempotent).
		if mon != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			mon.Shutdown(sctx) //nolint:errcheck // best-effort on exit
			cancel()
		}
		os.Exit(1)
	}
}

// applyManycore applies the coherent-mode flags on top of the chosen
// preset: parse the mode/topology spellings, override the core count,
// fill the mesh and private-L2 knobs from the ManyCore preset, and
// validate here so a bad combination (non-square mesh, MCs not
// dividing the cores) exits 2 with the config error instead of
// surfacing later as a run failure.
func applyManycore(cfg *config.Config, coherence, topology string, cores int) *config.Config {
	if coherence != "" {
		m, err := config.ParseCoherenceMode(coherence)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stacksim: %v\n", err)
			os.Exit(2)
		}
		cfg.Coherence = m
	}
	if topology != "" {
		tp, err := config.ParseTopology(topology)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stacksim: %v\n", err)
			os.Exit(2)
		}
		cfg.Topology = tp
	} else if cfg.Coherent() {
		cfg.Topology = config.TopoMesh // mesi implies the mesh
	}
	if cores > 0 {
		cfg.Cores = cores
	}
	if cfg.Coherent() {
		donor := config.ManyCore(16, 4)
		cfg.MeshLinkBytes = donor.MeshLinkBytes
		cfg.MeshLinkLatency = donor.MeshLinkLatency
		cfg.MeshRouterLatency = donor.MeshRouterLatency
		cfg.MeshBufPkts = donor.MeshBufPkts
		cfg.PrivL2KB = donor.PrivL2KB
		cfg.PrivL2Ways = donor.PrivL2Ways
		cfg.PrivL2Latency = donor.PrivL2Latency
		cfg.PrivL2MSHRs = donor.PrivL2MSHRs
		cfg.DirLatency = donor.DirLatency
		cfg.Name = fmt.Sprintf("%s-%dc-mesh", cfg.Name, cfg.Cores)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "stacksim: %v\n", err)
		os.Exit(2)
	}
	return cfg
}

// validateFlags rejects flag combinations that would otherwise be
// silent no-ops: the telemetry sub-flags do nothing without
// -telemetry-dir, the monitor serves a single run's registry, so it
// conflicts with sweep mode, and checkpoint/resume describe one
// generator-driven run.
func validateFlags(telemetryDir string, sampleEvery int64, monitorAddr, mixName,
	checkpoint, resume, traces string, ckptEvery int64, stackMode, ledgerDir string,
	coherence string, cores int, faultScenario string, dynamic bool) {
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["topology"] && coherence != "mesi" {
		fmt.Fprintln(os.Stderr, "stacksim: -topology does nothing without -coherence mesi (the shared L2 has no modeled interconnect)")
		os.Exit(2)
	}
	if cores > 4 && coherence != "mesi" {
		fmt.Fprintf(os.Stderr, "stacksim: -cores %d needs the directory/mesh hierarchy; add -coherence mesi\n", cores)
		os.Exit(2)
	}
	if explicit["cores"] && cores <= 0 {
		fmt.Fprintln(os.Stderr, "stacksim: -cores must be a positive core count")
		os.Exit(2)
	}
	if coherence == "mesi" {
		if stackMode != "memory" {
			fmt.Fprintln(os.Stderr, "stacksim: -coherence mesi requires -stack-mode memory (directory banks ride the stacked controllers)")
			os.Exit(2)
		}
		if faultScenario != "" {
			fmt.Fprintln(os.Stderr, "stacksim: -coherence mesi does not support -fault-scenario")
			os.Exit(2)
		}
		if dynamic {
			fmt.Fprintln(os.Stderr, "stacksim: -dynamic resizes the shared L2's MSHR banks; it does nothing under -coherence mesi")
			os.Exit(2)
		}
		if resume != "" || checkpoint != "" {
			fmt.Fprintln(os.Stderr, "stacksim: -checkpoint/-resume do not support -coherence mesi runs yet")
			os.Exit(2)
		}
	}
	if stackMode == "memory" {
		for _, name := range []string{"stack-cap-mb", "stack-ways", "stack-tags-sram",
			"stack-tag-lat", "stack-fill-bytes", "stack-hot-frac"} {
			if explicit[name] {
				fmt.Fprintf(os.Stderr, "stacksim: -%s does nothing in memory mode; add -stack-mode cache or memcache\n", name)
				os.Exit(2)
			}
		}
	}
	if explicit["stack-hot-frac"] && stackMode == "cache" {
		fmt.Fprintln(os.Stderr, "stacksim: -stack-hot-frac only applies to -stack-mode memcache")
		os.Exit(2)
	}
	if telemetryDir == "" {
		for _, name := range []string{"sample-every", "trace-events", "trace-sample", "attrib", "power"} {
			if explicit[name] {
				fmt.Fprintf(os.Stderr, "stacksim: -%s does nothing without -telemetry-dir; add -telemetry-dir <dir>\n", name)
				os.Exit(2)
			}
		}
	}
	if checkpoint != "" || resume != "" {
		if strings.Contains(mixName, ",") {
			fmt.Fprintln(os.Stderr, "stacksim: -checkpoint/-resume describe a single run; they conflict with a multi-mix sweep")
			os.Exit(2)
		}
		if traces != "" {
			fmt.Fprintln(os.Stderr, "stacksim: -checkpoint/-resume rebuild the workload from benchmark generators; they conflict with -traces")
			os.Exit(2)
		}
	}
	if resume != "" {
		// The checkpoint carries the run's full config, workload and
		// fault scenario; flags that would contradict it are rejected
		// rather than silently ignored.
		for _, name := range []string{"config", "mix", "bench", "fault-scenario", "fault-seed", "seed", "warmup", "measure"} {
			if explicit[name] {
				fmt.Fprintf(os.Stderr, "stacksim: -%s conflicts with -resume (the checkpoint carries the run's config)\n", name)
				os.Exit(2)
			}
		}
	}
	if explicit["checkpoint-every"] && checkpoint == "" && resume == "" {
		fmt.Fprintln(os.Stderr, "stacksim: -checkpoint-every does nothing without -checkpoint or -resume")
		os.Exit(2)
	}
	if ckptEvery <= 0 && (checkpoint != "" || resume != "") {
		fmt.Fprintln(os.Stderr, "stacksim: -checkpoint-every must be a positive cycle count")
		os.Exit(2)
	}
	if explicit["fault-seed"] && !explicit["fault-scenario"] {
		fmt.Fprintln(os.Stderr, "stacksim: -fault-seed does nothing without -fault-scenario")
		os.Exit(2)
	}
	// 0 is meaningful (disable the time-series, keep the other
	// exports); only negative intervals are nonsense.
	if sampleEvery < 0 {
		fmt.Fprintln(os.Stderr, "stacksim: -sample-every must be >= 0 cycles (0 disables the time-series)")
		os.Exit(2)
	}
	if ledgerDir != "" {
		// The ledger addresses a run by its config and workload *names*;
		// a trace workload's behavior lives in the trace file contents,
		// which the digest never sees, so a hit could serve the wrong
		// run. Checkpoint/resume runs are partial by construction.
		if traces != "" {
			fmt.Fprintln(os.Stderr, "stacksim: -ledger-dir conflicts with -traces (trace contents are outside the run's content address)")
			os.Exit(2)
		}
		if checkpoint != "" || resume != "" {
			fmt.Fprintln(os.Stderr, "stacksim: -ledger-dir conflicts with -checkpoint/-resume (the ledger records only complete, from-scratch runs)")
			os.Exit(2)
		}
	}
	if monitorAddr != "" {
		if strings.Contains(mixName, ",") {
			fmt.Fprintln(os.Stderr, "stacksim: -monitor-addr serves a single run; it conflicts with a multi-mix sweep (use cmd/experiments -monitor-addr for fleet progress)")
			os.Exit(2)
		}
		if telemetryDir == "" {
			fmt.Fprintln(os.Stderr, "stacksim: -monitor-addr needs the telemetry registry; add -telemetry-dir <dir>")
			os.Exit(2)
		}
	}
}

// writeAttribJSON exports the attribution breakdown next to the other
// telemetry artifacts.
func writeAttribJSON(path string, b *attrib.Breakdown) error {
	return writeJSON(path, b)
}

// writeJSON exports one telemetry artifact as indented JSON.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// powerThermalWire adapts the tracker summary into monitor's wire
// shape (monitor stays free of the machine's packages).
func powerThermalWire(s core.PowerThermalSummary) *monitor.PowerThermal {
	out := &monitor.PowerThermal{
		CPUPowerW:        s.CPUPowerW,
		DRAMPowerW:       s.DRAMPowerW,
		OffChipPowerW:    s.OffChipPowerW,
		TotalPowerW:      s.TotalPowerW,
		MaxDRAMTempC:     s.MaxDRAMTempC,
		LimitC:           s.LimitC,
		WithinLimit:      s.WithinLimit,
		LimitExceedances: s.LimitExceedances,
		OverLimitCycles:  s.OverLimitCycles,
		OffChipTempC:     s.OffChipTempC,
	}
	for _, l := range s.Layers {
		out.Layers = append(out.Layers, monitor.PowerThermalLayer{
			Name: l.Name, PowerW: l.PowerW, TempC: l.TempC,
			PeakC: l.PeakC, OverLimitCycles: l.OverLimitCycles,
		})
	}
	return out
}

// runSweep fans a comma-separated mix list over the Runner's worker
// pool and reports one summary line per mix, in the order given. The
// report is independent of -j: runs are deterministic in isolation and
// collection follows submission order. A cancelled or failed run marks
// its own line and the exit code; completed siblings still print.
func runSweep(ctx context.Context, cfg *config.Config, mixes []string, jobs int, warmup, measure int64, led *ledger.Ledger) {
	for i := range mixes {
		mixes[i] = strings.TrimSpace(mixes[i])
		m, ok := workload.MixByName(mixes[i])
		if !ok {
			fmt.Fprintf(os.Stderr, "stacksim: unknown mix %q\n", mixes[i])
			os.Exit(2)
		}
		// Canonical spelling, so the ledger key is casing-independent.
		mixes[i] = m.Name
	}
	r := core.NewRunner(warmup, measure)
	r.Workers = jobs
	r.Ctx = ctx
	if led != nil {
		r.Ledger = led
		r.GitRevision = gitDescribe()
	}
	started := time.Now()
	r.Prefetch(cfg, mixes...)
	fmt.Printf("config: %s   warmup=%d measured=%d cycles   %d mixes\n",
		cfg.Name, warmup, measure, len(mixes))
	failed := 0
	for _, mix := range mixes {
		m, err := r.MixMetrics(cfg, mix)
		if err != nil {
			fmt.Printf("  %-4s FAILED: %v\n", mix, err)
			failed++
			continue
		}
		fmt.Printf("  %-4s HMIPC=%.4f  L2miss=%.3f  rowhit=%.3f  busutil=%.3f\n",
			mix, m.HMIPC, m.L2MissRate, m.RowHitRate, m.BusUtilization)
	}
	workers := jobs
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("sweep: %d runs in %.2fs (j=%d)\n", r.Runs(), time.Since(started).Seconds(), workers)
	if led != nil {
		fmt.Printf("ledger: %d of %d runs served from %s\n",
			r.Status().LedgerHits, len(mixes), led.Dir())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "stacksim: %d of %d sweep runs failed\n", failed, len(mixes))
		os.Exit(1)
	}
}

// ledgerRecall looks the run up by its content address and, on a hit,
// decodes the recorded metrics — numerically identical to re-running.
func ledgerRecall(led *ledger.Ledger, cfg *config.Config, workloadKey []string) (core.Metrics, *ledger.Record, bool) {
	id, _, err := core.RunIdentity(cfg, workloadKey)
	if err != nil {
		fatal(err)
	}
	if !led.Has(id) {
		return core.Metrics{}, nil, false
	}
	rec, err := led.Get(id)
	if err != nil {
		fatal(err)
	}
	m, err := core.RecallMetrics(rec)
	if err != nil {
		fatal(err)
	}
	return m, rec, true
}

// recordRun appends the completed run to the ledger: manifest with the
// real engine-efficiency counters, the registry's final scalars as the
// metric map (when telemetry ran; otherwise the flattened Metrics), and
// the attribution / power-thermal payloads when those trackers ran.
func recordRun(led *ledger.Ledger, cfg *config.Config, workloadKey []string, m *core.Metrics,
	sys *core.System, tel *telemetry.Telemetry, col *attrib.Collector, pt *core.PowerThermal, started time.Time,
) {
	var final map[string]float64
	if tel != nil {
		final = make(map[string]float64)
		tel.Reg().Scalars(func(name string, _ telemetry.MetricKind, v float64) {
			// JSON cannot carry NaN/Inf; dropping a poisoned gauge beats
			// losing the record (the gate still sees it in the exports).
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				final[name] = v
			}
		})
	}
	rec, err := core.NewRunRecord(cfg, workloadKey, m, sys.EngineReport(), final,
		"", gitDescribe(), started, time.Since(started).Seconds())
	if err != nil {
		fatal(err)
	}
	if col != nil {
		if data, jerr := json.Marshal(col.Breakdown()); jerr == nil {
			rec.Attrib = data
		}
	}
	if pt != nil {
		if data, jerr := json.Marshal(pt.Summary()); jerr == nil {
			rec.PowerThermal = data
		}
	}
	added, err := led.Put(rec)
	if err != nil {
		fatal(err)
	}
	if added {
		fmt.Printf("ledger: recorded %s in %s\n", rec.Manifest.ID, led.Dir())
	} else {
		fmt.Printf("ledger: %s already recorded in %s\n", rec.Manifest.ID, led.Dir())
	}
}

// flagValues snapshots every explicitly set flag for the manifest.
func flagValues() map[string]string {
	fv := make(map[string]string)
	flag.Visit(func(f *flag.Flag) { fv[f.Name] = f.Value.String() })
	return fv
}

// gitDescribe best-effort identifies the source tree; empty when git is
// unavailable (the manifest field is omitted).
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// engineReport prints how hard the event-driven engine worked for the
// run: ticks actually delivered vs cycles simulated, the share of
// cycles jumped without stepping, and how well the request pool kept
// the hot path allocation-free. The same numbers are exported as
// engine.* gauges when telemetry is on.
func engineReport(sys *core.System) {
	er := sys.EngineReport()
	if er.Cycles == 0 {
		return
	}
	fmt.Printf("engine: %d ticks / %d cycles (%.2f ticks/cycle), %d cycles skipped (%.1f%%)\n",
		er.TicksDelivered, er.Cycles, er.TicksPerCycle, er.CyclesSkipped, 100*er.SkipRatio)
	if er.PoolGets > 0 {
		fmt.Printf("  request pool: %d requests, %.1f%% served from the free list\n",
			er.PoolGets, 100*er.PoolHitRate)
	}
}

// report prints the collected metrics.
func report(cfg *config.Config, m core.Metrics) {
	fmt.Printf("config: %s   warmup=%d measured=%d cycles\n", cfg.Name, cfg.WarmupCycles, cfg.MeasureCycles)
	fmt.Printf("HMIPC: %.4f\n", m.HMIPC)
	for i, b := range m.Benchmarks {
		fmt.Printf("  core%d %-12s IPC=%.4f  L2 demand MPKI=%.1f\n", i, b, m.IPC[i], m.MPKI[i])
	}
	fmt.Printf("L2 miss rate:      %.3f\n", m.L2MissRate)
	fmt.Printf("DRAM row-hit rate: %.3f\n", m.RowHitRate)
	fmt.Printf("bus utilization:   %.3f\n", m.BusUtilization)
	fmt.Printf("DRAM reads/writes: %d / %d\n", m.DRAMReads, m.DRAMWrites)
	fmt.Printf("MSHR-full set-asides: %d\n", m.MSHRFullStalls)
	fmt.Printf("DRAM energy: %s\n", m.Energy)
	if m.EnergyBacking.TotalUJ() > 0 {
		fmt.Printf("backing energy: %s\n", m.EnergyBacking)
	}
	if st := m.Stack; st.Probes+st.DirectReads+st.DirectWrites > 0 {
		fmt.Printf("stack cache: hit rate %.3f  (probes=%d hits=%d merges=%d fills=%d)\n",
			m.StackHitRate, st.Probes, st.Hits, st.MissMerges, st.Fills)
		fmt.Printf("  writebacks absorbed/forwarded: %d / %d   backing reads/writes: %d / %d\n",
			st.WritebacksIn, st.WritebacksOut, m.BackingReads, m.BackingWrites)
		if st.DirectReads+st.DirectWrites > 0 {
			fmt.Printf("  hot-region direct reads/writes: %d / %d\n", st.DirectReads, st.DirectWrites)
		}
	}
	if cs := m.Coherence; cs.Accesses > 0 {
		fmt.Printf("coherence: upgrades=%d invalidations=%d c2c=%d wb-races=%d\n",
			cs.Upgrades, cs.Invalidations, cs.C2CTransfers, cs.WBRaces)
		n := m.NoC
		fmt.Printf("noc: injected=%d delivered=%d avg-latency=%.1f avg-hops=%.1f\n",
			n.Injected, n.Delivered, n.AvgLatency(), n.AvgHops())
	}
	if pf := m.PrefetchL1; pf.Issued > 0 {
		fmt.Printf("L1 prefetch: issued=%d useful=%d accuracy=%.2f drops=%d\n",
			pf.Issued, pf.Useful, pf.Accuracy(), pf.Drops)
	}
	if pf := m.PrefetchL2; pf.Issued > 0 {
		fmt.Printf("L2 prefetch: issued=%d useful=%d accuracy=%.2f drops=%d\n",
			pf.Issued, pf.Useful, pf.Accuracy(), pf.Drops)
	}
	if m.RefreshSkipRate > 0 {
		fmt.Printf("refreshes skipped: %.1f%%\n", 100*m.RefreshSkipRate)
	}
	if m.ProbesPerAccess > 0 {
		fmt.Printf("MSHR probes/access: %.2f\n", m.ProbesPerAccess)
	}
	if f := m.Faults; f.Total() > 0 {
		fmt.Printf("faults injected: %d  (ECC corrected=%d uncorrectable=%d retry-cycles=%d)\n",
			f.Total(), f.BitErrorsCorrected, f.BitErrorsUncorrectable, f.ECCRetryCycles)
		fmt.Printf("  rank remaps=%d blocked=%d  MC stall-edges=%d  TSV degraded=%d dead-wait=%d  MSHR parity=%d\n",
			f.RankRemaps, f.RankBlocked, f.MCStallEdges, f.LinkDegradedTransfers, f.LinkDeadWaitCycles, f.MSHRParityErrors)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stacksim: %v\n", err)
	os.Exit(1)
}
