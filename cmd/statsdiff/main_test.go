package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stackedsim/internal/ledger"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCSVFinalSample(t *testing.T) {
	path := writeTemp(t, "ts.csv", "cycle,mc0.reads,mc0.writes\n1000,5,1\n2000,12,3\n")
	vals, err := loadExport(path)
	if err != nil {
		t.Fatal(err)
	}
	if vals["mc0.reads"] != 12 || vals["mc0.writes"] != 3 {
		t.Fatalf("final sample = %v, want reads=12 writes=3", vals)
	}
}

func TestLoadJSONLFinalSample(t *testing.T) {
	path := writeTemp(t, "ts.jsonl",
		`{"cycle":1000,"metrics":{"bus.bytes":64}}`+"\n"+
			`{"cycle":2000,"metrics":{"bus.bytes":128}}`+"\n")
	vals, err := loadExport(path)
	if err != nil {
		t.Fatal(err)
	}
	if vals["bus.bytes"] != 128 {
		t.Fatalf("final sample = %v, want bus.bytes=128", vals)
	}
}

// TestLoadErrorsAreClear pins the messages for unusable exports: every
// failure names the file and says what is wrong with it, instead of a
// panic or a silent zero-metric compare.
func TestLoadErrorsAreClear(t *testing.T) {
	cases := []struct {
		name, file, content, want string
	}{
		{"empty csv", "e.csv", "", "empty export"},
		{"wrong header", "h.csv", "time,x\n1,2\n", `want "cycle"`},
		{"header only", "o.csv", "cycle,x\n", "no samples"},
		{"truncated row", "t.csv", "cycle,x,y\n1000,5\n", "truncated write?"},
		{"bad cell", "b.csv", "cycle,x\n1000,wat\n", "metric x"},
		{"empty jsonl", "e.jsonl", "", "empty export"},
		{"truncated jsonl", "t.jsonl", `{"cycle":1000,"metr`, "truncated write?"},
		{"no metrics jsonl", "m.jsonl", `{"cycle":1000}`, "no metrics"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			path := writeTemp(t, c.file, c.content)
			_, err := loadExport(path)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if !strings.Contains(err.Error(), c.file) {
				t.Fatalf("error %q does not name the file", err)
			}
		})
	}
	if _, err := loadExport(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing export loaded")
	}
}

func TestDiffThresholdGate(t *testing.T) {
	oldVals := map[string]float64{"a": 100, "b": 100, "c": 100, "gone": 1}
	newVals := map[string]float64{"a": 100, "b": 103, "c": 120, "fresh": 1}
	rows, breaches := diff(oldVals, newVals, 0.05, "")
	if breaches != 1 {
		t.Fatalf("breaches = %d, want 1 (only c moved >5%%)", breaches)
	}
	kinds := map[string]diffKind{}
	for _, r := range rows {
		kinds[r.name] = r.kind
	}
	want := map[string]diffKind{
		"a": diffSame, "b": diffChanged, "c": diffBreach,
		"gone": diffOnlyOld, "fresh": diffOnlyNew,
	}
	for name, k := range want {
		if kinds[name] != k {
			t.Fatalf("%s classified %d, want %d (rows %+v)", name, kinds[name], k, rows)
		}
	}
}

// TestOnlyIgnoreGlobs pins the -only/-ignore filters: -only keeps its
// matches, -ignore then drops, both over comma-separated path.Match
// globs, and a malformed pattern is an error instead of a silent
// match-nothing.
func TestOnlyIgnoreGlobs(t *testing.T) {
	vals := map[string]float64{
		"power.total.w":         91,
		"power.layer.cpu.w":     79.5,
		"thermal.max_dram.c":    70,
		"mc0.reads":             12,
		"power.energy.total_uj": 1234,
	}
	keep, err := globFilter("power.*", "")
	if err != nil {
		t.Fatal(err)
	}
	got := filterVals(vals, keep)
	if len(got) != 3 || got["power.total.w"] != 91 || got["power.layer.cpu.w"] != 79.5 {
		t.Fatalf("-only 'power.*' kept %v", got)
	}

	keep, err = globFilter("", "power.*,thermal.*")
	if err != nil {
		t.Fatal(err)
	}
	got = filterVals(vals, keep)
	if len(got) != 1 || got["mc0.reads"] != 12 {
		t.Fatalf("-ignore 'power.*,thermal.*' kept %v", got)
	}

	// -only then -ignore compose: the energy family minus the total.
	keep, err = globFilter("power.energy.*, power.total.w", "power.total.*")
	if err != nil {
		t.Fatal(err)
	}
	got = filterVals(vals, keep)
	if len(got) != 1 || got["power.energy.total_uj"] != 1234 {
		t.Fatalf("composed filters kept %v", got)
	}

	// Empty specs keep everything.
	keep, err = globFilter("", "")
	if err != nil {
		t.Fatal(err)
	}
	if got = filterVals(vals, keep); len(got) != len(vals) {
		t.Fatalf("empty filters dropped metrics: %v", got)
	}

	if _, err := globFilter("power.[", ""); err == nil {
		t.Fatal("malformed -only glob accepted")
	}
	if _, err := globFilter("", "x["); err == nil {
		t.Fatal("malformed -ignore glob accepted")
	}
}

// run invokes the command in-process and returns its exit code plus
// combined output.
func run(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out strings.Builder
	code := realMain(args, &out, &out)
	return code, out.String()
}

// TestExitCodeTaxonomyFileMode pins the documented exit statuses in
// file mode: 0 clean, 1 regression, 2 usage/IO error.
func TestExitCodeTaxonomyFileMode(t *testing.T) {
	base := writeTemp(t, "base.csv", "cycle,ipc\n1000,1.0\n")
	same := writeTemp(t, "same.csv", "cycle,ipc\n1000,1.0\n")
	worse := writeTemp(t, "worse.csv", "cycle,ipc\n1000,0.8\n")
	if code, out := run(t, "-threshold", "0.05", base, same); code != 0 {
		t.Fatalf("clean compare exit %d, want 0\n%s", code, out)
	}
	if code, out := run(t, "-threshold", "0.05", base, worse); code != 1 {
		t.Fatalf("regression exit %d, want 1\n%s", code, out)
	}
	if code, _ := run(t, "-threshold", "0.05", base); code != 2 {
		t.Fatal("one positional arg accepted")
	}
	if code, _ := run(t, base, filepath.Join(t.TempDir(), "missing.csv")); code != 2 {
		t.Fatal("unreadable export did not exit 2")
	}
	if code, _ := run(t, "-a", "latest", base, same); code != 2 {
		t.Fatal("-a without -ledger-dir accepted")
	}
}

// ledgerFixture records a baseline and a 12%-slower candidate, with the
// baseline pinned as "blessed".
func ledgerFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	type cfg struct {
		Name string
		Seed int64
	}
	mk := func(seed int64, hmipc float64) string {
		id, digest, err := ledger.RunID(cfg{"quadMC", seed}, []string{"mix:VH1"}, "test-v1")
		if err != nil {
			t.Fatal(err)
		}
		rec := &ledger.Record{
			Manifest: ledger.Manifest{ID: id, ConfigDigest: digest, Config: "quadMC",
				Workload: []string{"mix:VH1"}, Seed: seed, SimVersion: "test-v1"},
			Metrics: map[string]float64{"ipc.hm": hmipc, "power.total.w": 91.5},
		}
		if _, err := l.Put(rec); err != nil {
			t.Fatal(err)
		}
		return id
	}
	baseID := mk(1, 1.25)
	mk(2, 1.10) // latest: 12% below the baseline
	if err := l.Tag("blessed", baseID); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestLedgerMode pins the ledger-native gate: refs resolve (tags,
// "latest"), the baseline sits on the -b side, breaches fail with exit
// 1, unknown refs and usage errors exit 2, and -pin blesses a new
// baseline only after a clean compare.
func TestLedgerMode(t *testing.T) {
	dir := ledgerFixture(t)

	code, out := run(t, "-ledger-dir", dir, "-a", "latest", "-b", "blessed", "-threshold", "0.05")
	if code != 1 {
		t.Fatalf("regressed candidate exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "ipc.hm") || !strings.Contains(out, "1 breaches") {
		t.Fatalf("breach report missing:\n%s", out)
	}

	// The candidate may not be blessed while it breaches.
	code, out = run(t, "-ledger-dir", dir, "-a", "latest", "-b", "blessed",
		"-threshold", "0.05", "-pin", "blessed")
	if code != 1 || !strings.Contains(out, "not pinning") {
		t.Fatalf("breaching pin: exit %d\n%s", code, out)
	}

	// Comparing the baseline against itself is clean, so -pin retags.
	code, out = run(t, "-ledger-dir", dir, "-a", "blessed", "-b", "blessed",
		"-threshold", "0.05", "-pin", "known-good")
	if code != 0 || !strings.Contains(out, `pinned`) {
		t.Fatalf("clean pin: exit %d\n%s", code, out)
	}
	l, err := ledger.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tags, err := l.Tags()
	if err != nil {
		t.Fatal(err)
	}
	if tags["known-good"] == "" || tags["known-good"] != tags["blessed"] {
		t.Fatalf("pin did not land: tags %v", tags)
	}

	for _, args := range [][]string{
		{"-ledger-dir", dir, "-a", "latest"},                                             // missing -b
		{"-ledger-dir", dir, "-a", "latest", "-b", "no-such-run"},                        // unknown ref
		{"-ledger-dir", dir, "-a", "latest", "-b", "blessed", "x.csv"},                   // positional + ledger
		{"-ledger-dir", filepath.Join(dir, "nope", "deeper"), "-a", "latest", "-b", "x"}, // unopenable
	} {
		if code, out := run(t, args...); code != 2 {
			t.Fatalf("%v: exit %d, want 2\n%s", args, code, out)
		}
	}

	// Glob filters apply to ledger metrics too: with ipc.* ignored the
	// compare is clean.
	code, out = run(t, "-ledger-dir", dir, "-a", "latest", "-b", "blessed",
		"-threshold", "0.05", "-ignore", "ipc.*")
	if code != 0 {
		t.Fatalf("-ignore in ledger mode: exit %d\n%s", code, out)
	}
}

// TestDiffNaNAlwaysBreaches pins the gate's NaN rule: NaN never
// compares, so without special-casing a corrupt export would pass any
// threshold — including report-only mode.
func TestDiffNaNAlwaysBreaches(t *testing.T) {
	nan := math.NaN()
	for _, c := range []struct {
		name     string
		ov, nv   float64
		thresh   float64
		breaches int
	}{
		{"new is NaN", 5, nan, 0.05, 1},
		{"old is NaN", nan, 5, 0.05, 1},
		{"both NaN", nan, nan, 0.05, 1},
		{"NaN in report-only mode", 5, nan, 0, 1},
	} {
		t.Run(c.name, func(t *testing.T) {
			rows, breaches := diff(map[string]float64{"m": c.ov}, map[string]float64{"m": c.nv}, c.thresh, "")
			if breaches != c.breaches {
				t.Fatalf("breaches = %d, want %d", breaches, c.breaches)
			}
			if len(rows) != 1 || rows[0].kind != diffBreach || !strings.Contains(rows[0].line, "NaN") {
				t.Fatalf("row %+v is not a flagged NaN breach", rows)
			}
		})
	}
	// Metrics present on only one side stay non-breaching even as NaN:
	// added/removed instrumentation never fails the gate.
	if _, breaches := diff(map[string]float64{}, map[string]float64{"m": math.NaN()}, 0.05, ""); breaches != 0 {
		t.Fatalf("one-sided NaN breached (%d), want added metrics exempt", breaches)
	}
}
