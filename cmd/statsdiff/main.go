// Command statsdiff is the cross-run regression gate: it compares two
// runs metric by metric and prints per-metric deltas. With -threshold
// it fails on any metric whose relative change exceeds the threshold.
//
// Two sources:
//
//   - File mode (two positional arguments): compares the final samples
//     of two telemetry time-series exports (the timeseries.csv or
//     timeseries.jsonl a -telemetry-dir run writes) — the run-end
//     cumulative totals.
//   - Ledger mode (-ledger-dir): compares two recorded runs straight
//     from the content-addressed run ledger that stacksim/experiments
//     -ledger-dir populates. -a and -b accept a run ID, a tag name, or
//     "latest"; -b is the baseline. A passing compare can pin run -a
//     under a tag with -pin, blessing it as the next baseline.
//
// Usage:
//
//	statsdiff old/timeseries.csv new/timeseries.csv
//	statsdiff -threshold 0.05 -match 'mc0.' old.jsonl new.jsonl
//	statsdiff -threshold 0.02 -only 'power.energy.*' old.csv new.csv
//	statsdiff -ignore 'power.*,thermal.*' old.csv new.csv
//	statsdiff -all old.csv new.csv
//	statsdiff -ledger-dir runs/ -a latest -b blessed -threshold 0.05
//	statsdiff -ledger-dir runs/ -a latest -b blessed -pin blessed
//
// -only and -ignore take comma-separated path.Match globs over metric
// names ('power.*' matches the whole power family — * spans dots, only
// '/' stops it). -only keeps matching metrics, then -ignore drops
// matching ones; both compose with -match and apply in either mode.
//
// Metrics present in only one run are reported (as added/removed) but
// never count as breaches: growing the instrumentation must not fail
// the gate. A NaN metric always breaches, threshold or not.
//
// Exit status taxonomy (scripted gates depend on it):
//
//	0 — compared clean: every shared metric within the threshold
//	1 — regression: at least one breach (threshold exceeded, or a NaN)
//	2 — usage or I/O error: bad flags, unreadable export, unknown
//	    ledger ref, failed tag pin
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path"
	"strconv"
	"strings"

	"stackedsim/internal/ledger"
)

func main() { os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr)) }

// realMain is main's body behind an exit code with injectable streams,
// so the exit taxonomy is testable without spawning processes.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("statsdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threshold = fs.Float64("threshold", 0, "relative change that counts as a breach (0 = report only, never fail)")
		match     = fs.String("match", "", "only compare metrics whose name contains this substring")
		only      = fs.String("only", "", "comma-separated globs; only compare metrics matching one of them")
		ignore    = fs.String("ignore", "", "comma-separated globs; drop metrics matching one of them")
		all       = fs.Bool("all", false, "also print unchanged metrics")
		ledgerDir = fs.String("ledger-dir", "", "compare runs recorded in this ledger instead of telemetry exports")
		aRef      = fs.String("a", "latest", "ledger mode: run under test (run ID, tag, or \"latest\")")
		bRef      = fs.String("b", "", "ledger mode: baseline run (run ID, tag, or \"latest\")")
		pin       = fs.String("pin", "", "ledger mode: after a clean compare, pin run -a under this tag (bless a new baseline)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: statsdiff [flags] <old export> <new export>\n")
		fmt.Fprintf(stderr, "   or: statsdiff -ledger-dir <dir> -a <ref> -b <ref> [flags]\n")
		fmt.Fprintf(stderr, "exports are timeseries.csv/.jsonl files; ledger refs are run IDs, tags, or \"latest\"\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fatal := func(err error) int {
		fmt.Fprintf(stderr, "statsdiff: %v\n", err)
		return 2
	}

	keep, err := globFilter(*only, *ignore)
	if err != nil {
		return fatal(err)
	}

	var oldVals, newVals map[string]float64
	var led *ledger.Ledger
	var aID string
	if *ledgerDir != "" {
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "statsdiff: -ledger-dir takes runs via -a/-b, not positional exports")
			return 2
		}
		if *bRef == "" {
			fmt.Fprintln(stderr, "statsdiff: ledger mode needs a baseline: -b <run ID, tag, or \"latest\">")
			return 2
		}
		if led, err = ledger.Open(*ledgerDir); err != nil {
			return fatal(err)
		}
		recA, err := led.Get(*aRef)
		if err != nil {
			return fatal(err)
		}
		recB, err := led.Get(*bRef)
		if err != nil {
			return fatal(err)
		}
		aID = recA.Manifest.ID
		newVals, oldVals = recA.Metrics, recB.Metrics
		fmt.Fprintf(stdout, "statsdiff: a=%s (%s %s) vs baseline b=%s (%s %s)\n",
			*aRef, recA.Manifest.ID, recA.Manifest.Config, *bRef, recB.Manifest.ID, recB.Manifest.Config)
	} else {
		explicit := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		for _, name := range []string{"a", "b", "pin"} {
			if explicit[name] {
				fmt.Fprintf(stderr, "statsdiff: -%s selects a ledger run; add -ledger-dir <dir>\n", name)
				return 2
			}
		}
		if fs.NArg() != 2 {
			fs.Usage()
			return 2
		}
		if oldVals, err = loadExport(fs.Arg(0)); err != nil {
			return fatal(err)
		}
		if newVals, err = loadExport(fs.Arg(1)); err != nil {
			return fatal(err)
		}
	}
	oldVals = filterVals(oldVals, keep)
	newVals = filterVals(newVals, keep)

	rows, breaches := diff(oldVals, newVals, *threshold, *match)
	for _, r := range rows {
		if !*all && r.kind == diffSame {
			continue
		}
		fmt.Fprintln(stdout, r.line)
	}
	fmt.Fprintf(stdout, "statsdiff: %d metrics compared, %d changed, %d breaches (threshold %g)\n",
		len(rows), changed(rows), breaches, *threshold)
	if breaches > 0 {
		if *pin != "" {
			fmt.Fprintf(stdout, "statsdiff: not pinning %q: the compare breached\n", *pin)
		}
		return 1
	}
	if *pin != "" {
		if err := led.Tag(*pin, aID); err != nil {
			return fatal(err)
		}
		fmt.Fprintf(stdout, "statsdiff: pinned %s as %q\n", aID, *pin)
	}
	return 0
}

// globFilter compiles -only/-ignore into one predicate over metric
// names. Empty -only keeps everything; -ignore then drops its matches.
// Invalid patterns fail fast (path.ErrBadPattern) rather than silently
// matching nothing.
func globFilter(only, ignore string) (func(string) bool, error) {
	parse := func(spec string) ([]string, error) {
		if spec == "" {
			return nil, nil
		}
		var pats []string
		for _, p := range strings.Split(spec, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			// Validate now: path.Match only reports a bad pattern when
			// it gets that far through the name, so probe it directly.
			if _, err := path.Match(p, "probe"); err != nil {
				return nil, fmt.Errorf("bad glob %q: %w", p, err)
			}
			pats = append(pats, p)
		}
		return pats, nil
	}
	onlyPats, err := parse(only)
	if err != nil {
		return nil, err
	}
	ignorePats, err := parse(ignore)
	if err != nil {
		return nil, err
	}
	matches := func(pats []string, name string) bool {
		for _, p := range pats {
			if ok, _ := path.Match(p, name); ok {
				return true
			}
		}
		return false
	}
	return func(name string) bool {
		if len(onlyPats) > 0 && !matches(onlyPats, name) {
			return false
		}
		return !matches(ignorePats, name)
	}, nil
}

// filterVals drops metrics the predicate rejects.
func filterVals(vals map[string]float64, keep func(string) bool) map[string]float64 {
	out := make(map[string]float64, len(vals))
	for n, v := range vals {
		if keep(n) {
			out[n] = v
		}
	}
	return out
}

type diffKind int

const (
	diffSame diffKind = iota
	diffChanged
	diffBreach
	diffOnlyOld
	diffOnlyNew
)

type diffRow struct {
	name string
	kind diffKind
	line string
}

func changed(rows []diffRow) int {
	n := 0
	for _, r := range rows {
		if r.kind != diffSame {
			n++
		}
	}
	return n
}

// diff compares the two runs metric by metric on top of ledger.Compare
// (the same engine the monitor's /compare endpoint uses), rendering the
// command's report lines. One semantic adjustment: ledger.Compare
// treats every over-threshold change as a breach, while this command's
// contract is that -threshold 0 means report-only — so in that mode
// only NaNs remain breaches. NaN always breaches: NaN means the export
// (or the metric's computation) is broken, and NaN's non-ordering would
// otherwise let it sail through every comparison.
func diff(oldVals, newVals map[string]float64, threshold float64, match string) (rows []diffRow, breaches int) {
	if match != "" {
		contains := func(n string) bool { return strings.Contains(n, match) }
		oldVals = filterVals(oldVals, contains)
		newVals = filterVals(newVals, contains)
	}
	deltas, breaches := ledger.Compare(newVals, oldVals, threshold)
	for _, d := range deltas {
		nv, ov := d.A, d.B
		switch d.Kind {
		case ledger.DiffOnlyA:
			rows = append(rows, diffRow{d.Name, diffOnlyNew,
				fmt.Sprintf("  + %-32s %14s -> %14g (new metric)", d.Name, "-", nv)})
		case ledger.DiffOnlyB:
			rows = append(rows, diffRow{d.Name, diffOnlyOld,
				fmt.Sprintf("  - %-32s %14g -> %14s (removed)", d.Name, ov, "-")})
		case ledger.DiffSame:
			rows = append(rows, diffRow{d.Name, diffSame,
				fmt.Sprintf("    %-32s %14g (unchanged)", d.Name, ov)})
		default:
			if math.IsNaN(ov) || math.IsNaN(nv) {
				rows = append(rows, diffRow{d.Name, diffBreach,
					fmt.Sprintf("  ! %-32s %14g -> %14g (NaN: export or metric is broken)", d.Name, ov, nv)})
				continue
			}
			kind, mark := diffChanged, " "
			if d.Kind == ledger.DiffBreach && threshold > 0 {
				kind, mark = diffBreach, "!"
			} else if d.Kind == ledger.DiffBreach {
				breaches-- // report-only mode: a non-NaN change never fails
			}
			rows = append(rows, diffRow{d.Name, kind,
				fmt.Sprintf("  %s %-32s %14g -> %14g (%+.2f%%)", mark, d.Name, ov, nv, 100*signedRel(ov, nv))})
		}
	}
	return rows, breaches
}

// signedRel is the signed relative change for display (0 baseline
// renders as ±100%).
func signedRel(ov, nv float64) float64 {
	if ov == 0 {
		if nv > 0 {
			return 1
		}
		if nv < 0 {
			return -1
		}
		return 0
	}
	return (nv - ov) / ov
}

// loadExport reads a telemetry export and returns the final sample's
// metric values. The format is chosen by suffix: .jsonl parses one
// JSON object per line, anything else parses the sampler's CSV.
func loadExport(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return loadJSONL(f, path)
	}
	return loadCSV(f, path)
}

func loadCSV(f *os.File, path string) (map[string]float64, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("%s: empty export", path)
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 1 || header[0] != "cycle" {
		return nil, fmt.Errorf("%s: not a telemetry CSV (header starts %q, want \"cycle\")", path, header[0])
	}
	var last string
	for sc.Scan() {
		if t := strings.TrimSpace(sc.Text()); t != "" {
			last = t
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if last == "" {
		return nil, fmt.Errorf("%s: header but no samples (did the run finish?)", path)
	}
	cells := strings.Split(last, ",")
	if len(cells) != len(header) {
		return nil, fmt.Errorf("%s: final row has %d cells, header has %d (truncated write?)", path, len(cells), len(header))
	}
	vals := make(map[string]float64, len(header)-1)
	for i := 1; i < len(header); i++ {
		v, err := strconv.ParseFloat(cells[i], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: metric %s: %w", path, header[i], err)
		}
		vals[header[i]] = v
	}
	return vals, nil
}

func loadJSONL(f *os.File, path string) (map[string]float64, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var last string
	for sc.Scan() {
		if t := strings.TrimSpace(sc.Text()); t != "" {
			last = t
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if last == "" {
		return nil, fmt.Errorf("%s: empty export", path)
	}
	var row struct {
		Cycle   int64              `json:"cycle"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(last), &row); err != nil {
		return nil, fmt.Errorf("%s: final line is not valid JSON (truncated write?): %w", path, err)
	}
	if row.Metrics == nil {
		return nil, fmt.Errorf("%s: final line has no metrics object", path)
	}
	return row.Metrics, nil
}
