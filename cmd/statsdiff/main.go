// Command statsdiff compares two telemetry time-series exports (the
// timeseries.csv or timeseries.jsonl a -telemetry-dir run writes) and
// prints per-metric deltas of their final samples — the run-end
// cumulative totals. With -threshold it becomes a perf-regression
// gate: any metric whose relative change exceeds the threshold is a
// breach and the exit status is non-zero.
//
// Usage:
//
//	statsdiff old/timeseries.csv new/timeseries.csv
//	statsdiff -threshold 0.05 -match 'mc0.' old.jsonl new.jsonl
//	statsdiff -threshold 0.02 -only 'power.energy.*' old.csv new.csv
//	statsdiff -ignore 'power.*,thermal.*' old.csv new.csv
//	statsdiff -all old.csv new.csv
//
// -only and -ignore take comma-separated path.Match globs over metric
// names ('power.*' matches the whole power family — * spans dots, only
// '/' stops it). -only keeps matching metrics, then -ignore drops
// matching ones; both compose with -match.
//
// Metrics present in only one export are reported (as added/removed)
// but never count as breaches: growing the instrumentation must not
// fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0, "relative change that counts as a breach (0 = report only, never fail)")
		match     = flag.String("match", "", "only compare metrics whose name contains this substring")
		only      = flag.String("only", "", "comma-separated globs; only compare metrics matching one of them")
		ignore    = flag.String("ignore", "", "comma-separated globs; drop metrics matching one of them")
		all       = flag.Bool("all", false, "also print unchanged metrics")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: statsdiff [flags] <old export> <new export>\n")
		fmt.Fprintf(os.Stderr, "exports are timeseries.csv or timeseries.jsonl files from a -telemetry-dir run\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	keep, err := globFilter(*only, *ignore)
	if err != nil {
		fatal(err)
	}

	oldVals, err := loadExport(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newVals, err := loadExport(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	oldVals = filterVals(oldVals, keep)
	newVals = filterVals(newVals, keep)

	rows, breaches := diff(oldVals, newVals, *threshold, *match)
	printed := 0
	for _, r := range rows {
		if !*all && r.kind == diffSame {
			continue
		}
		fmt.Println(r.line)
		printed++
	}
	fmt.Printf("statsdiff: %d metrics compared, %d changed, %d breaches (threshold %g)\n",
		len(rows), changed(rows), breaches, *threshold)
	if breaches > 0 {
		os.Exit(1)
	}
}

// globFilter compiles -only/-ignore into one predicate over metric
// names. Empty -only keeps everything; -ignore then drops its matches.
// Invalid patterns fail fast (path.ErrBadPattern) rather than silently
// matching nothing.
func globFilter(only, ignore string) (func(string) bool, error) {
	parse := func(spec string) ([]string, error) {
		if spec == "" {
			return nil, nil
		}
		var pats []string
		for _, p := range strings.Split(spec, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			// Validate now: path.Match only reports a bad pattern when
			// it gets that far through the name, so probe it directly.
			if _, err := path.Match(p, "probe"); err != nil {
				return nil, fmt.Errorf("bad glob %q: %w", p, err)
			}
			pats = append(pats, p)
		}
		return pats, nil
	}
	onlyPats, err := parse(only)
	if err != nil {
		return nil, err
	}
	ignorePats, err := parse(ignore)
	if err != nil {
		return nil, err
	}
	matches := func(pats []string, name string) bool {
		for _, p := range pats {
			if ok, _ := path.Match(p, name); ok {
				return true
			}
		}
		return false
	}
	return func(name string) bool {
		if len(onlyPats) > 0 && !matches(onlyPats, name) {
			return false
		}
		return !matches(ignorePats, name)
	}, nil
}

// filterVals drops metrics the predicate rejects.
func filterVals(vals map[string]float64, keep func(string) bool) map[string]float64 {
	out := make(map[string]float64, len(vals))
	for n, v := range vals {
		if keep(n) {
			out[n] = v
		}
	}
	return out
}

type diffKind int

const (
	diffSame diffKind = iota
	diffChanged
	diffBreach
	diffOnlyOld
	diffOnlyNew
)

type diffRow struct {
	name string
	kind diffKind
	line string
}

func changed(rows []diffRow) int {
	n := 0
	for _, r := range rows {
		if r.kind != diffSame {
			n++
		}
	}
	return n
}

// diff compares the two final samples metric by metric. A breach is a
// metric present in both whose relative change magnitude exceeds
// threshold (> 0); against a zero baseline any nonzero new value
// breaches. A NaN on either side always breaches, threshold or not:
// NaN means the export (or the metric's computation) is broken, and
// NaN's non-ordering would otherwise let it sail through every
// comparison.
func diff(oldVals, newVals map[string]float64, threshold float64, match string) (rows []diffRow, breaches int) {
	names := make(map[string]bool, len(oldVals)+len(newVals))
	for n := range oldVals {
		names[n] = true
	}
	for n := range newVals {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		if match == "" || strings.Contains(n, match) {
			ordered = append(ordered, n)
		}
	}
	sort.Strings(ordered)
	for _, name := range ordered {
		ov, hasOld := oldVals[name]
		nv, hasNew := newVals[name]
		switch {
		case hasOld && hasNew && (math.IsNaN(ov) || math.IsNaN(nv)):
			breaches++
			rows = append(rows, diffRow{name, diffBreach,
				fmt.Sprintf("  ! %-32s %14g -> %14g (NaN: export or metric is broken)", name, ov, nv)})
		case !hasOld:
			rows = append(rows, diffRow{name, diffOnlyNew,
				fmt.Sprintf("  + %-32s %14s -> %14g (new metric)", name, "-", nv)})
		case !hasNew:
			rows = append(rows, diffRow{name, diffOnlyOld,
				fmt.Sprintf("  - %-32s %14g -> %14s (removed)", name, ov, "-")})
		case ov == nv:
			rows = append(rows, diffRow{name, diffSame,
				fmt.Sprintf("    %-32s %14g (unchanged)", name, ov)})
		default:
			rel := relChange(ov, nv)
			kind := diffChanged
			mark := " "
			if threshold > 0 && rel > threshold {
				kind = diffBreach
				mark = "!"
				breaches++
			}
			rows = append(rows, diffRow{name, kind,
				fmt.Sprintf("  %s %-32s %14g -> %14g (%+.2f%%)", mark, name, ov, nv, 100*signedRel(ov, nv))})
		}
	}
	return rows, breaches
}

// relChange is the magnitude of the relative change |new-old|/|old|;
// a zero baseline with a nonzero new value reports +Inf-like 1e18 so
// any positive threshold breaches.
func relChange(ov, nv float64) float64 {
	if ov == 0 {
		if nv == 0 {
			return 0
		}
		return 1e18
	}
	d := (nv - ov) / ov
	if d < 0 {
		d = -d
	}
	return d
}

// signedRel is the signed relative change for display (0 baseline
// renders as ±100%).
func signedRel(ov, nv float64) float64 {
	if ov == 0 {
		if nv > 0 {
			return 1
		}
		if nv < 0 {
			return -1
		}
		return 0
	}
	return (nv - ov) / ov
}

// loadExport reads a telemetry export and returns the final sample's
// metric values. The format is chosen by suffix: .jsonl parses one
// JSON object per line, anything else parses the sampler's CSV.
func loadExport(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return loadJSONL(f, path)
	}
	return loadCSV(f, path)
}

func loadCSV(f *os.File, path string) (map[string]float64, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("%s: empty export", path)
	}
	header := strings.Split(sc.Text(), ",")
	if len(header) < 1 || header[0] != "cycle" {
		return nil, fmt.Errorf("%s: not a telemetry CSV (header starts %q, want \"cycle\")", path, header[0])
	}
	var last string
	for sc.Scan() {
		if t := strings.TrimSpace(sc.Text()); t != "" {
			last = t
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if last == "" {
		return nil, fmt.Errorf("%s: header but no samples (did the run finish?)", path)
	}
	cells := strings.Split(last, ",")
	if len(cells) != len(header) {
		return nil, fmt.Errorf("%s: final row has %d cells, header has %d (truncated write?)", path, len(cells), len(header))
	}
	vals := make(map[string]float64, len(header)-1)
	for i := 1; i < len(header); i++ {
		v, err := strconv.ParseFloat(cells[i], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: metric %s: %w", path, header[i], err)
		}
		vals[header[i]] = v
	}
	return vals, nil
}

func loadJSONL(f *os.File, path string) (map[string]float64, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var last string
	for sc.Scan() {
		if t := strings.TrimSpace(sc.Text()); t != "" {
			last = t
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if last == "" {
		return nil, fmt.Errorf("%s: empty export", path)
	}
	var row struct {
		Cycle   int64              `json:"cycle"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(last), &row); err != nil {
		return nil, fmt.Errorf("%s: final line is not valid JSON (truncated write?): %w", path, err)
	}
	if row.Metrics == nil {
		return nil, fmt.Errorf("%s: final line has no metrics object", path)
	}
	return row.Metrics, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "statsdiff: %v\n", err)
	os.Exit(2)
}
