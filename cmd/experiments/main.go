// Command experiments regenerates every table and figure of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig4,fig6a -measure 1000000 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"stackedsim/internal/config"
	"stackedsim/internal/core"
	"stackedsim/internal/floorplan"
	"stackedsim/internal/thermal"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiments: table1,table2a,table2b,fig4,fig6a,fig6b,fig7a,fig7b,fig9a,fig9b,vbfprobes,energy,banking,stability,tsv,thermal,ablations")
		warmup  = flag.Int64("warmup", 200_000, "warmup cycles per run")
		measure = flag.Int64("measure", 600_000, "measured cycles per run")
		verbose = flag.Bool("v", false, "print per-run progress")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned tables")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
			f.Close()
		}()
	}

	r := core.NewRunner(*warmup, *measure)
	if *verbose {
		r.Progress = os.Stderr
	}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := wanted["all"]
	want := func(name string) bool { return all || wanted[name] }

	type figFn func() (*core.Figure, error)
	figures := []struct {
		name   string
		format string
		fn     figFn
	}{
		{"table2a", "%.1f", r.Table2a},
		{"table2b", "%.3f", r.Table2b},
		{"fig4", "%.2f", r.Figure4},
		{"fig6a", "%.3f", r.Figure6a},
		{"fig6b", "%.3f", r.Figure6b},
		{"fig7a", "%.1f", func() (*core.Figure, error) { return r.Figure7(false) }},
		{"fig7b", "%.1f", func() (*core.Figure, error) { return r.Figure7(true) }},
		{"fig9a", "%.1f", func() (*core.Figure, error) { return r.Figure9(false) }},
		{"fig9b", "%.1f", func() (*core.Figure, error) { return r.Figure9(true) }},
		{"vbfprobes", "%.2f", r.VBFProbes},
		{"energy", "%.2f", r.EnergyFigure},
		{"banking", "%.3f", r.MSHRBankingFigure},
		{"stability", "%.4f", r.StabilityFigure},
		{"ablations", "%.3f", r.Ablations},
	}

	ran := 0
	if want("table1") {
		fmt.Println("Table 1: baseline quad-core processor parameters")
		fmt.Println(config.Table1())
		ran++
	}
	for _, f := range figures {
		if !want(f.name) {
			continue
		}
		fig, err := f.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", f.name, err)
			os.Exit(1)
		}
		if *csvOut {
			fmt.Print(fig.CSV())
			fmt.Println()
		} else {
			fmt.Println(fig.Render(f.format))
		}
		ran++
	}
	if want("tsv") {
		fmt.Println(floorplan.Report())
		ran++
	}
	if want("thermal") {
		fmt.Println("Thermal check (Section 2.4): 8 DRAM layers + logic over a quad-core")
		fmt.Println(thermal.NewCPUDRAMStack(8, 80, 1.5, true).Report())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
}
