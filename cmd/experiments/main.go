// Command experiments regenerates every table and figure of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig4,fig6a -measure 1000000 -v
//	experiments -exp all -j 8 -perf-json perf.json
//	experiments -exp all -ledger-dir runs/ -monitor-addr :8080
//
// Runs fan out over a worker pool (-j, default GOMAXPROCS); output is
// byte-identical to -j 1 because every simulation is deterministic in
// isolation and figures print in a fixed order.
//
// With -ledger-dir every completed run lands in the content-addressed
// run ledger and already-recorded (config, workload, seed) runs are
// served from it without simulating, so re-generating a figure after an
// unrelated change is nearly free. The monitor then also serves /runs,
// /compare and the /dashboard over the same store.
//
// With -farm host:port each simulation is dispatched to a sim-farm
// coordinator (cmd/simfarm) instead of running in-process. Figures are
// byte-identical either way; worker deaths mid-sweep are absorbed by
// the farm's checkpointed failover.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"stackedsim/internal/config"
	"stackedsim/internal/core"
	"stackedsim/internal/farm"
	"stackedsim/internal/floorplan"
	"stackedsim/internal/ledger"
	"stackedsim/internal/monitor"
)

// perfReport is the -perf-json payload; scripts/bench.sh consumes it.
type perfReport struct {
	WallSeconds float64 `json:"wall_seconds"`
	Runs        uint64  `json:"runs"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Workers     int     `json:"workers"`
	LedgerHits  int64   `json:"ledger_hits"`
	// LedgerWriteRetries counts retried transient ledger writes
	// (0 when no ledger is attached).
	LedgerWriteRetries int64 `json:"ledger_write_retries,omitempty"`
	// Farm is the coordinator address when runs were dispatched
	// remotely via -farm.
	Farm string `json:"farm,omitempty"`
	// Interrupted marks a sweep cancelled by SIGINT/SIGTERM or a
	// deadline: the stats cover only the runs that finished.
	Interrupted bool `json:"interrupted,omitempty"`
}

func main() { os.Exit(run()) }

// run is main's body behind an exit code, so the deferred cleanups
// (profile flush, graceful monitor shutdown) run even on failure.
func run() int {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiments: table1,table2a,table2b,fig4,fig6a,fig6b,fig7a,fig7b,fig9a,fig9b,vbfprobes,energy,banking,stability,stackcap,tsv,thermal,ablations,manycore")
		warmup  = flag.Int64("warmup", 200_000, "warmup cycles per run")
		measure = flag.Int64("measure", 600_000, "measured cycles per run")
		verbose = flag.Bool("v", false, "print per-run progress")
		csvOut  = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jobs    = flag.Int("j", 0, "concurrent simulations (0 = GOMAXPROCS)")
		perfOut = flag.String("perf-json", "", "write wall-clock/throughput stats to this file")
		monAddr = flag.String("monitor-addr", "", "serve live runner progress (/metrics, /snapshot, /healthz, pprof) on this address")
		ledDir  = flag.String("ledger-dir", "", "content-addressed run ledger: record completed runs here and serve known runs from it without re-simulating")
		runTmo  = flag.Duration("run-timeout", 0, "per-simulation wall-time limit (0 = none); an over-budget run fails alone")
		farmFlg = flag.String("farm", "", "dispatch simulations to the sim-farm coordinator at this address (host:port) instead of simulating in-process")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file")
	)
	flag.Parse()

	// Reject flag misuse that would otherwise be a silent no-op or
	// nonsense, before any work starts (exit 2, like cmd/stacksim).
	if *jobs < 0 {
		fmt.Fprintln(os.Stderr, "experiments: -j must be >= 0 (0 = GOMAXPROCS)")
		return 2
	}
	if *runTmo < 0 {
		fmt.Fprintln(os.Stderr, "experiments: -run-timeout must be >= 0 (0 = no limit)")
		return 2
	}
	if *farmFlg != "" && (*cpuProfile != "" || *memProfile != "") {
		fmt.Fprintln(os.Stderr, "experiments: -cpuprofile/-memprofile profile the local process, but -farm runs the simulations remotely; profile the workers instead")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
			f.Close()
		}()
	}

	// SIGINT/SIGTERM cancel the sweep: queued runs never start, running
	// simulations stop at their next context check, and every figure
	// whose runs completed still prints before exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// After the first signal the sweep only drains (figures print, perf
	// JSON flushes); restore the default signal disposition so a second
	// ^C exits immediately instead of being silently swallowed.
	go func() {
		<-ctx.Done()
		stop()
	}()

	r := core.NewRunner(*warmup, *measure)
	r.Workers = *jobs
	r.Ctx = ctx
	r.RunTimeout = *runTmo
	if *farmFlg != "" {
		r.Farm = farm.NewClient(*farmFlg)
	}
	if *verbose {
		r.Progress = os.Stderr
	}
	var led *ledger.Ledger
	if *ledDir != "" {
		var err error
		if led, err = ledger.Open(*ledDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		r.Ledger = led
		r.Experiment = *expFlag
		r.GitRevision = gitDescribe()
	}

	// A long sweep is a black box until it exits; the monitor makes the
	// fleet observable live (queued/running/completed runs plus pprof
	// for the process itself). Simulations own their (per-run, private)
	// registries, so only runner progress is served here.
	if *monAddr != "" {
		mon := &monitor.Server{Ledger: led, ProgressFn: func() monitor.Progress {
			st := r.Status()
			p := monitor.Progress{Queued: st.Queued, Running: st.Running, Completed: st.Completed,
				Failed: st.Failed, LedgerHits: st.LedgerHits, LedgerWriteRetries: st.LedgerWriteRetries}
			for _, rep := range st.Reports {
				mr := monitor.RunReport{Config: rep.Config, Label: rep.Label, WallSeconds: rep.WallSeconds}
				if rep.Err != nil {
					mr.Err = rep.Err.Error()
				}
				p.Runs = append(p.Runs, mr)
			}
			return p
		}}
		if err := mon.Start(*monAddr); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		defer func() {
			// Graceful: let an in-flight scrape of the final state finish.
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			mon.Shutdown(sctx) //nolint:errcheck // best-effort on exit
		}()
		fmt.Fprintf(os.Stderr, "monitor: serving runner progress on %s\n", mon.Addr())
	}
	started := time.Now()

	wanted := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := wanted["all"]
	want := func(name string) bool {
		if name == "manycore" {
			// Opt-in only: the 256-core runs dwarf the paper's 4-core
			// sweeps and would dominate every -exp all invocation.
			return wanted[name]
		}
		return all || wanted[name]
	}

	type figFn func() (*core.Figure, error)
	figures := []struct {
		name   string
		format string
		fn     figFn
	}{
		{"table2a", "%.1f", r.Table2a},
		{"table2b", "%.3f", r.Table2b},
		{"fig4", "%.2f", r.Figure4},
		{"fig6a", "%.3f", r.Figure6a},
		{"fig6b", "%.3f", r.Figure6b},
		{"fig7a", "%.1f", func() (*core.Figure, error) { return r.Figure7(false) }},
		{"fig7b", "%.1f", func() (*core.Figure, error) { return r.Figure7(true) }},
		{"fig9a", "%.1f", func() (*core.Figure, error) { return r.Figure9(false) }},
		{"fig9b", "%.1f", func() (*core.Figure, error) { return r.Figure9(true) }},
		{"vbfprobes", "%.2f", r.VBFProbes},
		{"energy", "%.2f", r.EnergyFigure},
		{"banking", "%.3f", r.MSHRBankingFigure},
		{"stability", "%.4f", r.StabilityFigure},
		{"stackcap", "%.3f", r.StackCapacityFigure},
		{"thermal", "%.2f", r.ThermalFigure},
		{"ablations", "%.3f", r.Ablations},
		{"manycore", "%.4f", r.ManycoreFigure},
	}

	// Every wanted figure is generated concurrently — each generator
	// pre-enqueues its runs on the shared worker pool, so the pool stays
	// saturated across figures — but results print in declaration order,
	// keeping the output byte-identical to a sequential run.
	type figResult struct {
		fig *core.Figure
		err error
	}
	pending := make([]chan figResult, len(figures))
	for i, f := range figures {
		if !want(f.name) {
			continue
		}
		ch := make(chan figResult, 1)
		pending[i] = ch
		go func(fn figFn) {
			fig, err := fn()
			ch <- figResult{fig, err}
		}(f.fn)
	}

	ran, failed := 0, 0
	if want("table1") {
		fmt.Println("Table 1: baseline quad-core processor parameters")
		fmt.Println(config.Table1())
		ran++
	}
	for i, f := range figures {
		if pending[i] == nil {
			continue
		}
		res := <-pending[i]
		if res.err != nil {
			// One broken experiment (or a cancelled sweep) must not eat
			// the figures whose runs completed: report, keep printing,
			// fail the exit code at the end.
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", f.name, res.err)
			failed++
			ran++
			continue
		}
		if *csvOut {
			fmt.Print(res.fig.CSV())
			fmt.Println()
		} else {
			fmt.Println(res.fig.Render(f.format))
		}
		ran++
	}
	if want("tsv") {
		fmt.Println(floorplan.Report())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matched %q\n", *expFlag)
		return 2
	}

	if *perfOut != "" {
		wall := time.Since(started).Seconds()
		workers := *jobs
		if workers < 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		st := r.Status()
		rep := perfReport{
			WallSeconds:        wall,
			Runs:               r.Runs(),
			GOMAXPROCS:         runtime.GOMAXPROCS(0),
			Workers:            workers,
			LedgerHits:         st.LedgerHits,
			LedgerWriteRetries: st.LedgerWriteRetries,
			Farm:               *farmFlg,
			Interrupted:        ctx.Err() != nil,
		}
		if wall > 0 {
			rep.RunsPerSec = float64(rep.Runs) / wall
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*perfOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if led != nil {
		fmt.Fprintf(os.Stderr, "ledger: %d of %d runs served from %s\n",
			r.Status().LedgerHits, r.Runs(), led.Dir())
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; completed figures and perf stats were flushed")
	}
	if failed > 0 {
		// Surface which runs went wrong (the first error per run), then
		// fail the invocation.
		for _, rep := range r.Status().Reports {
			if rep.Err != nil {
				fmt.Fprintf(os.Stderr, "experiments: failed run %s/%s after %.2fs: %v\n",
					rep.Config, rep.Label, rep.WallSeconds, rep.Err)
			}
		}
		fmt.Fprintf(os.Stderr, "experiments: %d of %d experiments failed\n", failed, ran)
		return 1
	}
	return 0
}

// gitDescribe best-effort identifies the source tree for run manifests;
// empty when git is unavailable.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
