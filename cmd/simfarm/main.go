// Command simfarm runs the distributed experiment service.
//
//	simfarm coordinator -addr :9090 -ledger-dir /data/runs
//	simfarm worker -coordinator host:9090 [-name w1]
//	simfarm status -coordinator host:9090
//
// The coordinator mounts the job API under /farm/ on the standard
// monitor mux, so one address serves job dispatch, /healthz readiness
// (degraded when work is pending with no live workers, or the ledger
// store is unreachable), /metrics and the ledger's /runs endpoints.
// Workers simulate leased jobs under heartbeat-renewed leases and
// drain on SIGTERM/SIGINT: the in-flight job is checkpointed, handed
// back to the coordinator, and the worker deregisters, so a
// rescheduled worker resumes instead of restarting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stackedsim/internal/core"
	"stackedsim/internal/farm"
	"stackedsim/internal/ledger"
	"stackedsim/internal/monitor"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintln(os.Stderr, "usage: simfarm <coordinator|worker|status> [flags]")
	fmt.Fprintln(os.Stderr, "  simfarm coordinator -addr :9090 -ledger-dir DIR   serve the job API")
	fmt.Fprintln(os.Stderr, "  simfarm worker -coordinator HOST:PORT             simulate leased jobs")
	fmt.Fprintln(os.Stderr, "  simfarm status -coordinator HOST:PORT             print pool status JSON")
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "coordinator":
		return runCoordinator(args[1:])
	case "worker":
		return runWorker(args[1:])
	case "status":
		return runStatus(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "simfarm: unknown subcommand %q\n", args[0])
		return usage()
	}
}

func runCoordinator(args []string) int {
	fs := flag.NewFlagSet("simfarm coordinator", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address (use :0 for a free port)")
	ledgerDir := fs.String("ledger-dir", "", "run-ledger store backing the job table (optional but strongly recommended: it makes results durable and repeat submissions free)")
	lease := fs.Duration("lease", 15*time.Second, "worker heartbeat deadline; a silent worker loses its job after this")
	maxQueue := fs.Int("max-queue", 1024, "pending-job bound; submissions past it are shed with 429")
	maxAttempts := fs.Int("max-attempts", 3, "failure budget per job before quarantine")
	backoffBase := fs.Duration("backoff-base", 250*time.Millisecond, "re-dispatch backoff after the first failure (doubles per failure)")
	backoffMax := fs.Duration("backoff-max", 30*time.Second, "re-dispatch backoff cap")
	fs.Parse(args)

	var led *ledger.Ledger
	if *ledgerDir != "" {
		l, err := ledger.Open(*ledgerDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simfarm: open ledger: %v\n", err)
			return 1
		}
		led = l
	}
	coord, err := farm.NewCoordinator(farm.Params{
		Ledger:      led,
		SimVersion:  core.SimVersion,
		Lease:       *lease,
		MaxQueue:    *maxQueue,
		MaxAttempts: *maxAttempts,
		BackoffBase: *backoffBase,
		BackoffMax:  *backoffMax,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfarm: %v\n", err)
		return 1
	}
	mon := &monitor.Server{
		Ledger:      led,
		FarmHandler: coord.Handler(),
		HealthFn: func() []monitor.HealthCheck {
			status, detail := coord.Health()
			return []monitor.HealthCheck{{Name: "workers", Status: status, Detail: detail}}
		},
	}
	if err := mon.Start(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "simfarm: %v\n", err)
		return 1
	}
	// bench.sh parses this line to discover the :0-assigned port.
	fmt.Printf("simfarm coordinator: serving on %s\n", mon.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := mon.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "simfarm: shutdown: %v\n", err)
		return 1
	}
	fmt.Println("simfarm coordinator: drained")
	return 0
}

func runWorker(args []string) int {
	fs := flag.NewFlagSet("simfarm worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator address (host:port), required")
	name := fs.String("name", "", "worker name, unique within the pool (default host-pid)")
	poll := fs.Duration("poll", 250*time.Millisecond, "idle wait between lease attempts")
	checkpointEvery := fs.Int64("checkpoint-every", 1_000_000, "cycles between checkpoint uploads (smaller = tighter failover window)")
	fs.Parse(args)

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "simfarm: worker needs -coordinator HOST:PORT")
		return 2
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &farm.Worker{
		Client:          farm.NewClient(*coordinator),
		Name:            *name,
		Poll:            *poll,
		CheckpointEvery: *checkpointEvery,
		Log:             os.Stdout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("simfarm worker %s: polling %s\n", *name, *coordinator)
	w.Run(ctx)
	return 0
}

func runStatus(args []string) int {
	fs := flag.NewFlagSet("simfarm status", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator address (host:port), required")
	id := fs.String("id", "", "print one job's detail instead of the pool summary")
	fs.Parse(args)

	if *coordinator == "" {
		fmt.Fprintln(os.Stderr, "simfarm: status needs -coordinator HOST:PORT")
		return 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c := farm.NewClient(*coordinator)
	var out any
	var err error
	if *id != "" {
		out, err = c.Job(ctx, *id)
	} else {
		out, err = c.Status(ctx)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfarm: %v\n", err)
		return 1
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfarm: %v\n", err)
		return 1
	}
	fmt.Println(string(data))
	return 0
}
