// Command tracegen records a benchmark's synthetic μop stream to a
// binary trace, or inspects an existing trace.
//
// Usage:
//
//	tracegen -bench mcf -n 1000000 -o mcf.trace
//	tracegen -inspect mcf.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"stackedsim/internal/trace"
	"stackedsim/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark to record (see stacksim -list)")
		n       = flag.Uint64("n", 1_000_000, "μops to record")
		out     = flag.String("o", "", "output trace file")
		seed    = flag.Int64("seed", 1, "generator seed")
		inspect = flag.String("inspect", "", "print statistics of an existing trace")
	)
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		var memOps, stores, deps, mispred uint64
		lines := make(map[uint64]struct{})
		for i := 0; i < r.Len(); i++ {
			op := r.Next()
			if op.Mem {
				memOps++
				lines[op.VAddr/64] = struct{}{}
				if op.Store {
					stores++
				}
				if op.DependsOnPrev {
					deps++
				}
			}
			if op.Mispredict {
				mispred++
			}
		}
		total := uint64(r.Len())
		fmt.Printf("%s: %d μops\n", *inspect, total)
		fmt.Printf("  memory:     %d (%.1f%%)\n", memOps, 100*float64(memOps)/float64(total))
		fmt.Printf("  stores:     %d (%.1f%% of mem)\n", stores, pct(stores, memOps))
		fmt.Printf("  dependent:  %d (%.1f%% of mem)\n", deps, pct(deps, memOps))
		fmt.Printf("  mispredict: %d (%.2f%%)\n", mispred, 100*float64(mispred)/float64(total))
		fmt.Printf("  footprint:  %.2f MB (%d distinct 64B lines)\n",
			float64(len(lines))*64/(1<<20), len(lines))
		return
	}

	if *bench == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: need -bench and -o (or -inspect)")
		os.Exit(2)
	}
	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	gen := workload.NewGenerator(spec, *seed)
	if err := trace.Record(f, gen, *n); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d μops of %s to %s\n", *n, *bench, *out)
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
