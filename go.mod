module stackedsim

go 1.24
