// Quickstart: build the paper's quad-core system with 3D-stacked DRAM,
// run a memory-intensive mix, and compare it against off-chip memory.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stackedsim/internal/config"
	"stackedsim/internal/core"
)

func main() {
	// The H1 mix from the paper: Stream, libquantum, wupwise and mcf
	// sharing the quad-core's 12MB L2.
	const mix = "H1"

	// Off-chip DDR2 behind a 64-bit 833MHz front-side bus...
	flat, err := core.RunMix(config.Baseline2D(), mix)
	if err != nil {
		log.Fatal(err)
	}
	// ...versus true-3D stacked DRAM with a line-wide on-stack bus...
	stacked, err := core.RunMix(config.Fast3D(), mix)
	if err != nil {
		log.Fatal(err)
	}
	// ...versus the paper's aggressive organization: 4 memory
	// controllers, 16 ranks, 4-entry row-buffer caches.
	aggressive, err := core.RunMix(config.QuadMC(), mix)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s (%v)\n\n", mix, flat.Benchmarks)
	fmt.Printf("%-34s HMIPC=%.4f\n", "2D (off-chip DRAM)", flat.HMIPC)
	fmt.Printf("%-34s HMIPC=%.4f  (%.2fx)\n", "3D-fast (stacked, true-3D arrays)",
		stacked.HMIPC, stacked.HMIPC/flat.HMIPC)
	fmt.Printf("%-34s HMIPC=%.4f  (%.2fx)\n", "3D quad-MC/16-rank/4-row-buffer",
		aggressive.HMIPC, aggressive.HMIPC/flat.HMIPC)

	fmt.Printf("\nwhere the time went (2D -> aggressive):\n")
	fmt.Printf("  DRAM row-buffer hit rate: %.2f -> %.2f\n", flat.RowHitRate, aggressive.RowHitRate)
	fmt.Printf("  memory bus utilization:   %.2f -> %.2f\n", flat.BusUtilization, aggressive.BusUtilization)
	fmt.Printf("  L2 MSHR-full set-asides:  %d -> %d\n", flat.MSHRFullStalls, aggressive.MSHRFullStalls)
	fmt.Println("\n(the remaining MSHR stalls are what Section 5's scalable MHA removes —")
	fmt.Println(" see examples/mshrtuning)")
}
