// Tracereplay: record a benchmark's μop stream to a binary trace, then
// drive the simulator from the replayed trace and verify it reproduces
// the generator-driven run exactly. This is the workflow behind
// cmd/tracegen: traces freeze a workload so results stay comparable
// across generator changes.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"stackedsim/internal/config"
	"stackedsim/internal/core"
	"stackedsim/internal/cpu"
	"stackedsim/internal/trace"
	"stackedsim/internal/workload"
)

func main() {
	const bench = "mcf"
	cfg := config.Fast3D()
	cfg.Cores = 1
	cfg.WarmupCycles = 100_000
	cfg.MeasureCycles = 300_000

	spec, _ := workload.ByName(bench)

	// 1. Record: capture enough μops to cover warmup + measurement.
	var buf bytes.Buffer
	const nOps = 2_000_000
	if err := trace.Record(&buf, workload.NewGenerator(spec, cfg.Seed), nOps); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d muops of %s: %d bytes (%.2f bytes/muop)\n",
		nOps, bench, buf.Len(), float64(buf.Len())/nOps)

	// 2. Replay the trace through a full system.
	reader, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystemFromSources(cfg, []cpu.UOpSource{reader}, []string{bench + ".trace"})
	if err != nil {
		log.Fatal(err)
	}
	replayed := sys.Run()

	// 3. Run the generator directly for comparison.
	direct, err := core.RunSingle(cfg, bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %12s %12s\n", "", "direct", "replayed")
	fmt.Printf("%-12s %12.4f %12.4f\n", "IPC", direct.IPC[0], replayed.IPC[0])
	fmt.Printf("%-12s %12.1f %12.1f\n", "L2 MPKI", direct.MPKI[0], replayed.MPKI[0])
	fmt.Printf("%-12s %12d %12d\n", "DRAM reads", direct.DRAMReads, replayed.DRAMReads)
	if direct.IPC[0] == replayed.IPC[0] && direct.DRAMReads == replayed.DRAMReads {
		fmt.Println("\nreplay is cycle-exact: the trace fully captures the workload")
	} else {
		fmt.Println("\nWARNING: replay diverged from the generator run")
	}
}
