// MSHR tuning: the Section 5 story on one workload. Scales the L2 miss
// handling architecture on the quad-MC organization and compares the
// ideal CAM, the Vector-Bloom-Filter MSHR, and dynamic capacity tuning,
// including the VBF's probe statistics.
//
//	go run ./examples/mshrtuning
package main

import (
	"fmt"
	"log"

	"stackedsim/internal/config"
	"stackedsim/internal/core"
	"stackedsim/internal/stats"
)

func main() {
	base := config.QuadMC()
	const mix = "VH3" // tigr, libquantum, qsort, soplex: MSHR-hungry

	type variant struct {
		label string
		cfg   *config.Config
	}
	variants := []variant{
		{"baseline 8-entry MSHR", base},
		{"2x MSHR (ideal CAM)", base.WithMSHR(2, config.MSHRIdealCAM, false)},
		{"4x MSHR (ideal CAM)", base.WithMSHR(4, config.MSHRIdealCAM, false)},
		{"8x MSHR (ideal CAM)", base.WithMSHR(8, config.MSHRIdealCAM, false)},
		{"8x MSHR (linear probing)", base.WithMSHR(8, config.MSHRLinearProbe, false)},
		{"8x MSHR (VBF)", base.WithMSHR(8, config.MSHRVBF, false)},
		{"8x MSHR (VBF + dynamic)", base.WithMSHR(8, config.MSHRVBF, true)},
	}

	table := stats.NewTable("L2 MHA", "HMIPC", "vs baseline", "MSHR stalls", "probes/access")
	var baseline float64
	for _, v := range variants {
		m, err := core.RunMix(v.cfg, mix)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == 0 {
			baseline = m.HMIPC
		}
		probes := "-"
		if m.ProbesPerAccess > 0 {
			probes = fmt.Sprintf("%.2f", m.ProbesPerAccess)
		}
		table.AddRow(v.label,
			fmt.Sprintf("%.4f", m.HMIPC),
			fmt.Sprintf("%+.1f%%", 100*(m.HMIPC/baseline-1)),
			fmt.Sprintf("%d", m.MSHRFullStalls),
			probes,
		)
	}
	fmt.Printf("Scaling the L2 miss handling architecture on %s / %s:\n\n", base.Name, mix)
	fmt.Print(table.String())
	fmt.Println()
	fmt.Println("The direct-mapped VBF MSHR tracks the (impractical) single-cycle CAM")
	fmt.Println("because the filter keeps the average search to ~2 probes, and dynamic")
	fmt.Println("resizing protects the workloads that larger MSHRs would hurt.")
}
