// Thermal: the Section 2.4 feasibility check. Sweeps DRAM layer counts
// and CPU power to show when a 3D memory stack stays inside the DRAM
// thermal limit, and the floorplan arithmetic that sizes the stack.
//
//	go run ./examples/thermal
package main

import (
	"fmt"

	"stackedsim/internal/floorplan"
	"stackedsim/internal/stats"
	"stackedsim/internal/thermal"
)

func main() {
	fmt.Println(floorplan.Report())

	fmt.Println("Worst-case DRAM temperature vs stack height and CPU power")
	fmt.Printf("(ambient 45C, DRAM limit %.0fC):\n\n", thermal.DRAMThermalLimitC)
	table := stats.NewTable("layers", "60W CPU", "80W CPU", "100W CPU", "130W CPU")
	for _, layers := range []int{2, 4, 8, 16} {
		row := []string{fmt.Sprintf("%d+logic", layers)}
		for _, watts := range []float64{60, 80, 100, 130} {
			s := thermal.NewCPUDRAMStack(layers, watts, 1.5, true)
			mark := ""
			if !s.WithinDRAMLimit() {
				mark = " !"
			}
			row = append(row, fmt.Sprintf("%.1fC%s", s.MaxDRAMTempC(), mark))
		}
		table.AddRow(row...)
	}
	fmt.Print(table.String())

	fmt.Println()
	fmt.Println("The paper's configuration (8 DRAM layers + logic over a quad-core):")
	fmt.Println(thermal.NewCPUDRAMStack(8, 80, 1.5, true).Report())
	fmt.Println("Consistent with Section 2.4: within the Samsung datasheet limit, but")
	fmt.Println("hot enough that the stacked parts refresh at 32ms instead of 64ms —")
	fmt.Println("which is exactly how the DRAM model accounts for it.")
}
