// Streamlab: the decomposed Stream study. Runs the VH2 mix (copy,
// scale, add, triad — one kernel per core) across every memory
// organization and shows how each Stream kernel responds to bus width,
// array latency, and memory-level parallelism.
//
//	go run ./examples/streamlab
package main

import (
	"fmt"
	"log"

	"stackedsim/internal/config"
	"stackedsim/internal/core"
	"stackedsim/internal/stats"
)

func main() {
	configs := []*config.Config{
		config.Baseline2D(),
		config.Simple3D(),
		config.Wide3D(),
		config.Fast3D(),
		config.DualMC(),
		config.QuadMC(),
	}
	// Give the bandwidth study a slightly longer window: Stream is
	// steady-state almost immediately, but MC queues take a while to
	// reach equilibrium.
	table := stats.NewTable("organization", "S.copy", "S.scale", "S.add", "S.triad", "HMIPC", "bus util", "row hit")
	var base float64
	for _, cfg := range configs {
		cfg.MeasureCycles = 800_000
		m, err := core.RunMix(cfg, "VH2")
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = m.HMIPC
		}
		table.AddRow(cfg.Name,
			fmt.Sprintf("%.4f", m.IPC[0]),
			fmt.Sprintf("%.4f", m.IPC[1]),
			fmt.Sprintf("%.4f", m.IPC[2]),
			fmt.Sprintf("%.4f", m.IPC[3]),
			fmt.Sprintf("%.4f (%.2fx)", m.HMIPC, m.HMIPC/base),
			fmt.Sprintf("%.2f", m.BusUtilization),
			fmt.Sprintf("%.2f", m.RowHitRate),
		)
	}
	fmt.Println("Decomposed Stream (VH2) across memory organizations:")
	fmt.Println()
	fmt.Print(table.String())
	fmt.Println()
	fmt.Println("Reading the table: the 2D bus saturates (util ~1.0) and caps every")
	fmt.Println("kernel; widening the on-stack bus (3D-wide) trades bus cycles for")
	fmt.Println("bank timing; the true-3D arrays (3D-fast) cut the array latency; and")
	fmt.Println("the multi-controller organizations turn the leftover row-buffer")
	fmt.Println("locality into bandwidth.")
}
