#!/usr/bin/env sh
# Performance harness for stackedsim.
#
# Three measurements:
#   1. The root micro/figure benchmarks (single-run hot-loop speed) —
#      compare ns/op against a previous run to catch single-run
#      regressions (the PR gate is within +/-2%).
#   2. A reduced-window experiment sweep, sequential (-j 1) vs
#      parallel (-j 4, GOMAXPROCS unpinned to the CPU count), emitting
#      BENCH_sweep.json with wall seconds, runs/sec and the measured
#      speedup. The >=3x speedup gate applies on >=4-core hosts and is
#      skipped (with an annotation, never faked) on smaller ones.
#   2b. The engine benchmarks (idle-heavy cycles/s, saturated
#      throughput, request-path allocations), emitting
#      BENCH_engine.json gated against seed-commit baselines: >=5x
#      idle-heavy cycles/s and >=10x request-path allocs/op reduction.
#   3. The same instrumented run with attribution on vs off (best wall
#      of three each), emitting BENCH_attrib.json with both walls, the
#      cost of enabling attribution, and the disabled path's slowdown
#      (the PR gate: a disabled run is <=2% slower — in practice it is
#      faster), plus a statsdiff of the two exports' shared metrics as
#      a non-fatal sanity report (identical simulations must agree on
#      every non-attrib metric).
#   4. The same run with fault injection on (a light always-on bit-error
#      scenario) vs off, emitting BENCH_fault.json with both walls and
#      the enabled overhead. A fault-free run never constructs the
#      injector — every component holds a nil view — so the off wall
#      doubles as the baseline; only the enabled cost is measured.
#   5. The same run in each stack mode, emitting BENCH_stackcache.json.
#      Memory mode never constructs the stackcache layer (pinned
#      bit-identical to the seed by TestStackMemoryParity), so its wall
#      vs the plain run is the PR gate (~0, <=2%); the cache/memcache
#      walls price the extra machinery (tag probes, backing channel).
#   6. The same run with power/thermal tracking on vs off (best wall of
#      three each), emitting BENCH_thermal.json. A -power=false run
#      never attaches the tracker, so the PR gate is a <=2% disabled
#      slowdown (in practice ~0); the enabled wall prices the per-window
#      accounting and transient thermal integration. A statsdiff with
#      -ignore of power.*/thermal.*/engine.* checks tracking perturbed
#      nothing (engine.* tick-delivery gauges legitimately differ: the
#      tracker is an extra registered component).
#   7. The same run with -ledger-dir on vs off (best wall of three,
#      fresh store each iteration so every run pays the record write),
#      emitting BENCH_ledger.json. The PR gate is a <=2% write
#      overhead. The section then proves the dedupe path (a warm
#      re-run of a recorded run prints a cache hit and skips the
#      simulation), pins the recorded run as the "blessed" baseline
#      with statsdiff -pin, and gates latest-vs-blessed through
#      statsdiff -ledger-dir (exit 0 required).
#   8. The sim-farm sweep (cmd/simfarm coordinator + 2 workers): the
#      full fig4 sweep through `experiments -farm` three ways —
#      uninterrupted, warm (re-submitted cells must dispatch 0 new
#      jobs: the dedupe gate), and with one worker kill -9'd mid-sweep
#      (the sweep must still complete every cell, none lost or
#      duplicated, with the recovery wall <=1.5x uninterrupted: the
#      recovery gate). All farm stdout must be byte-identical to a
#      local run's — determinism survives distribution and failover.
#      Emits BENCH_farm.json. Correctness failures (lost cells, dedupe
#      re-dispatch, stdout divergence) are fatal; the recovery-wall
#      gate warns, like the other timing gates on small hosts.
#   9. The many-core subsystem's two promises, emitting
#      BENCH_manycore.json: (a) seed-mode runs are untouched — an
#      explicit `-coherence shared` run must collapse onto the plain
#      run's ledger RunID (cache hit: the flag path built a
#      bit-identical config) and statsdiff latest-vs-blessed must pass
#      at a 0.01% threshold; (b) a 64-core MESI/mesh run finishes
#      under a wall budget with the idle-skip engine still finding
#      skippable cycles (skipped > 0).
#
# Measurements 3-7 pass -power=false on their baselines so each one
# isolates its own subsystem's cost.
#
# Usage: scripts/bench.sh [outdir]   (default outdir: results)
#
# On a single-core machine the parallel sweep degenerates to the
# sequential one, so the reported speedup is ~1.0; the >=3x gate
# only applies on >=4-core machines and is skipped elsewhere.
set -eu
cd "$(dirname "$0")/.."

outdir=${1:-results}
mkdir -p "$outdir"

# The parallel sweep is only a real measurement when the Go runtime is
# allowed to use every core: a pinned GOMAXPROCS=1 (the seed's mistake)
# silently degrades -j N to time-sliced sequential execution. Unpin it
# to the machine's CPU count unless the caller set something larger.
ncpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ -z "${GOMAXPROCS:-}" ] || [ "${GOMAXPROCS}" -lt "$ncpu" ]; then
    GOMAXPROCS=$ncpu
fi
export GOMAXPROCS
echo "== num_cpu=$ncpu GOMAXPROCS=$GOMAXPROCS"

echo "== root benchmarks (go test -bench . -benchtime 1x)"
go test -run '^$' -bench . -benchtime 1x . | tee "$outdir/BENCH_root.txt"

echo "== building cmd/experiments"
bin=$(mktemp -d)/experiments
go build -o "$bin" ./cmd/experiments

sweep="-exp fig4,fig6b,table2b -warmup 20000 -measure 60000"
jpar=4
echo "== sequential sweep (-j 1): $sweep"
# shellcheck disable=SC2086 # $sweep is a word list by design
"$bin" $sweep -j 1 -perf-json "$outdir/perf_seq.json" > /dev/null
echo "== parallel sweep (-j $jpar): $sweep"
# shellcheck disable=SC2086
"$bin" $sweep -j "$jpar" -perf-json "$outdir/perf_par.json" > /dev/null

# Merge the two perf reports into BENCH_sweep.json. awk keeps the
# script dependency-free (jq may be absent on minimal builders).
json_field() {
    awk -F'[:,]' -v key="\"$2\"" '$1 ~ key { gsub(/[ \t]/, "", $2); print $2 }' "$1"
}
seq_wall=$(json_field "$outdir/perf_seq.json" wall_seconds)
par_wall=$(json_field "$outdir/perf_par.json" wall_seconds)
runs=$(json_field "$outdir/perf_par.json" runs)
gomaxprocs=$(json_field "$outdir/perf_par.json" gomaxprocs)
workers=$(json_field "$outdir/perf_par.json" workers)
speedup=$(awk -v s="$seq_wall" -v p="$par_wall" 'BEGIN { printf "%.3f", (p > 0) ? s / p : 0 }')
seq_rps=$(awk -v r="$runs" -v w="$seq_wall" 'BEGIN { printf "%.3f", (w > 0) ? r / w : 0 }')
par_rps=$(awk -v r="$runs" -v w="$par_wall" 'BEGIN { printf "%.3f", (w > 0) ? r / w : 0 }')

# The >=3x speedup gate only means anything with >=4 real cores: on a
# smaller host the workers time-slice the same CPUs and the honest
# speedup is ~1x, so the gate is skipped (never faked) and annotated.
if [ "$ncpu" -ge 4 ]; then
    gate_status=$(awk -v s="$speedup" 'BEGIN { print (s >= 3.0) ? "pass" : "fail" }')
else
    gate_status="skipped: num_cpu=$ncpu < 4, parallel sweep degenerates to time-sliced sequential"
fi

cat > "$outdir/BENCH_sweep.json" <<EOF
{
  "sweep": "fig4,fig6b,table2b @ warmup=20000 measure=60000",
  "runs": $runs,
  "num_cpu": $ncpu,
  "gomaxprocs": $gomaxprocs,
  "workers_parallel": $workers,
  "sequential_wall_seconds": $seq_wall,
  "parallel_wall_seconds": $par_wall,
  "sequential_runs_per_sec": $seq_rps,
  "parallel_runs_per_sec": $par_rps,
  "parallel_speedup": $speedup,
  "speedup_gate": 3.0,
  "speedup_gate_status": "$gate_status"
}
EOF
echo "== $outdir/BENCH_sweep.json"
cat "$outdir/BENCH_sweep.json"
case $gate_status in
fail) echo "bench: WARNING: parallel sweep speedup $speedup below 3.0x gate" ;;
esac

# Engine benchmarks: single-run simulation speed and request-path
# allocations, gated against baselines measured at the seed commit
# (d65ff91, pre event-driven engine) with the same benchmark bodies.
# allocs/op is deterministic and machine-independent, so its gate is
# exact everywhere; ns/op baselines were taken on the machine named
# below and the cycles/s gate is only meaningful on comparable hosts.
seed_commit="d65ff91"
seed_host="Intel Xeon @ 2.10GHz, 1 core"
seed_idle_ns=112110829   # BenchmarkSimulatorIdleHeavy, best of 3
seed_idle_allocs=171256
seed_tput_ns=130376639   # BenchmarkSimulatorThroughput, best of 3
seed_tput_allocs=632805
seed_req_allocs=6582     # BenchmarkRequestPath allocs per 1000 cycles

echo "== engine benchmarks (go test -bench -benchmem, best of 3)"
engine_raw="$outdir/BENCH_engine.txt"
go test -run '^$' -bench 'SimulatorIdleHeavy$|SimulatorThroughput$|RequestPath$' \
    -benchtime 3x -benchmem -count=3 . | tee "$engine_raw"

best_ns() {
    awk -v name="$1" '$1 ~ name"\\t|"name"-|"name"$" && $4 == "ns/op" \
        { if (best == "" || $3 + 0 < best + 0) best = $3 } END { print best }' "$engine_raw"
}
bench_allocs() {
    awk -v name="$1" '$1 ~ name"\\t|"name"-|"name"$" && /allocs\/op/ \
        { print $(NF-1); exit }' "$engine_raw"
}
idle_ns=$(best_ns BenchmarkSimulatorIdleHeavy)
idle_allocs=$(bench_allocs BenchmarkSimulatorIdleHeavy)
tput_ns=$(best_ns BenchmarkSimulatorThroughput)
tput_allocs=$(bench_allocs BenchmarkSimulatorThroughput)
req_allocs=$(bench_allocs BenchmarkRequestPath)

# cycles/s = benchmark cycles per op / (ns per op / 1e9).
idle_cps=$(awk -v ns="$idle_ns" 'BEGIN { printf "%.0f", 1000000 / (ns / 1e9) }')
seed_idle_cps=$(awk -v ns="$seed_idle_ns" 'BEGIN { printf "%.0f", 1000000 / (ns / 1e9) }')
idle_speedup=$(awk -v n="$idle_ns" -v s="$seed_idle_ns" 'BEGIN { printf "%.2f", (n > 0) ? s / n : 0 }')
tput_speedup=$(awk -v n="$tput_ns" -v s="$seed_tput_ns" 'BEGIN { printf "%.2f", (n > 0) ? s / n : 0 }')
req_alloc_reduction=$(awk -v n="$req_allocs" -v s="$seed_req_allocs" 'BEGIN { printf "%.1f", (n > 0) ? s / n : 0 }')
tput_alloc_reduction=$(awk -v n="$tput_allocs" -v s="$seed_tput_allocs" 'BEGIN { printf "%.1f", (n > 0) ? s / n : 0 }')

idle_gate=$(awk -v s="$idle_speedup" 'BEGIN { print (s >= 5.0) ? "pass" : "fail" }')
alloc_gate=$(awk -v r="$req_alloc_reduction" 'BEGIN { print (r >= 10.0) ? "pass" : "fail" }')

cat > "$outdir/BENCH_engine.json" <<EOF
{
  "seed_baseline": {
    "commit": "$seed_commit",
    "host": "$seed_host",
    "idle_heavy_ns_per_1M_cycles": $seed_idle_ns,
    "idle_heavy_cycles_per_sec": $seed_idle_cps,
    "idle_heavy_allocs_per_op": $seed_idle_allocs,
    "throughput_ns_per_100k_cycles": $seed_tput_ns,
    "throughput_allocs_per_op": $seed_tput_allocs,
    "request_path_allocs_per_1k_cycles": $seed_req_allocs
  },
  "current": {
    "idle_heavy_ns_per_1M_cycles": $idle_ns,
    "idle_heavy_cycles_per_sec": $idle_cps,
    "idle_heavy_allocs_per_op": $idle_allocs,
    "throughput_ns_per_100k_cycles": $tput_ns,
    "throughput_allocs_per_op": $tput_allocs,
    "request_path_allocs_per_1k_cycles": $req_allocs
  },
  "idle_heavy_cycles_per_sec_speedup": $idle_speedup,
  "idle_heavy_speedup_gate": 5.0,
  "idle_heavy_gate_status": "$idle_gate",
  "idle_heavy_gate_note": "ns/op baselines are host-dependent; measured on the seed host above",
  "throughput_speedup": $tput_speedup,
  "request_path_alloc_reduction": $req_alloc_reduction,
  "throughput_alloc_reduction": $tput_alloc_reduction,
  "alloc_reduction_gate": 10.0,
  "alloc_gate_status": "$alloc_gate",
  "alloc_gate_note": "allocs/op is deterministic and machine-independent"
}
EOF
echo "== $outdir/BENCH_engine.json"
cat "$outdir/BENCH_engine.json"
if [ "$idle_gate" = fail ]; then
    echo "bench: WARNING: idle-heavy cycles/s speedup $idle_speedup below 5x gate"
fi
if [ "$alloc_gate" = fail ]; then
    echo "bench: WARNING: request-path alloc reduction $req_alloc_reduction below 10x gate"
fi

echo "== building cmd/stacksim + cmd/statsdiff"
sbin=$(mktemp -d)/stacksim
go build -o "$sbin" ./cmd/stacksim
dbin=$(mktemp -d)/statsdiff
go build -o "$dbin" ./cmd/statsdiff

attrib_args="-config quadMC -mix VH1 -warmup 50000 -measure 600000"
attrib_tmp=$(mktemp -d)
attrib_on="$attrib_tmp/attrib_on"
attrib_off="$attrib_tmp/attrib_off"

# Best wall of three runs each: single-run walls are ~a second, so the
# minimum is the least-noisy estimate of the hot-loop cost.
best_wall() {
    dir=$1; shift
    best=""
    for _ in 1 2 3; do
        rm -rf "$dir"
        # shellcheck disable=SC2086 # $attrib_args is a word list by design
        "$sbin" $attrib_args -telemetry-dir "$dir" "$@" > /dev/null
        w=$(json_field "$dir/manifest.json" wall_seconds)
        best=$(awk -v a="${best:-$w}" -v b="$w" 'BEGIN { print (b < a) ? b : a }')
    done
    printf '%s' "$best"
}
echo "== attribution on (best of 3):  $attrib_args -power=false"
on_wall=$(best_wall "$attrib_on" -power=false)
echo "== attribution off (best of 3): $attrib_args -attrib=false -power=false"
off_wall=$(best_wall "$attrib_off" -attrib=false -power=false)

# enabled_overhead: what turning attribution ON costs (informational).
# disabled_slowdown: what a run with attribution OFF pays relative to
# the instrumented one — the nil-check path; the PR gate is <=2%
# (negative means the disabled run is faster, as expected).
enabled_overhead=$(awk -v on="$on_wall" -v off="$off_wall" \
    'BEGIN { printf "%.4f", (off > 0) ? (on - off) / off : 0 }')
disabled_slowdown=$(awk -v on="$on_wall" -v off="$off_wall" \
    'BEGIN { printf "%.4f", (on > 0) ? (off - on) / on : 0 }')

cat > "$outdir/BENCH_attrib.json" <<EOF
{
  "run": "quadMC VH1 @ warmup=50000 measure=600000, best wall of 3",
  "attrib_on_wall_seconds": $on_wall,
  "attrib_off_wall_seconds": $off_wall,
  "attrib_enabled_overhead": $enabled_overhead,
  "attrib_disabled_slowdown": $disabled_slowdown,
  "disabled_budget": 0.02
}
EOF
echo "== $outdir/BENCH_attrib.json"
cat "$outdir/BENCH_attrib.json"

# Sanity: the two runs are the same simulation, so every metric they
# share must be identical (attribution only adds attrib.* columns).
# Non-fatal: a diff here is a parity bug to investigate, not a reason
# to lose the benchmark numbers above.
echo "== statsdiff attrib-on vs attrib-off (shared metrics must be unchanged)"
"$dbin" -threshold 0.0001 \
    "$attrib_off/timeseries.csv" "$attrib_on/timeseries.csv" \
    || echo "bench: WARNING: attribution changed shared metrics (parity bug)"

# Fault-injection overhead: the same run with a light always-on
# bit-error scenario vs plain. The off run IS the attrib-off run above
# (identical flags), so only the faulted wall is new work.
fault_tmp=$(mktemp -d)
cat > "$fault_tmp/scenario.json" <<'EOF'
{
  "name": "bench",
  "faults": [
    {"kind": "bit-error", "mc": -1, "prob": 0.01, "uncorrectable_pct": 0.05},
    {"kind": "mshr-parity", "prob": 0.005}
  ]
}
EOF
echo "== fault injection on (best of 3): $attrib_args -fault-scenario bench"
fault_wall=$(best_wall "$fault_tmp/fault_on" -attrib=false -power=false -fault-scenario "$fault_tmp/scenario.json")

fault_overhead=$(awk -v on="$fault_wall" -v off="$off_wall" \
    'BEGIN { printf "%.4f", (off > 0) ? (on - off) / off : 0 }')

cat > "$outdir/BENCH_fault.json" <<EOF
{
  "run": "quadMC VH1 @ warmup=50000 measure=600000, best wall of 3",
  "scenario": "bit-error prob=0.01 uncorrectable_pct=0.05 + mshr-parity prob=0.005",
  "fault_on_wall_seconds": $fault_wall,
  "fault_off_wall_seconds": $off_wall,
  "fault_enabled_overhead": $fault_overhead
}
EOF
echo "== $outdir/BENCH_fault.json"
cat "$outdir/BENCH_fault.json"

# Stack-mode walls: the off run above IS the implicit memory-mode run,
# but the explicit -stack-mode memory spelling is re-measured so the
# gate covers the flag path too.
stack_tmp=$(mktemp -d)
echo "== stack memory mode (best of 3): $attrib_args -stack-mode memory"
memory_wall=$(best_wall "$stack_tmp/memory" -attrib=false -power=false -stack-mode memory)
echo "== stack cache mode (best of 3): $attrib_args -stack-mode cache -stack-cap-mb 64"
cache_wall=$(best_wall "$stack_tmp/cache" -attrib=false -power=false -stack-mode cache -stack-cap-mb 64)
echo "== stack memcache mode (best of 3): $attrib_args -stack-mode memcache -stack-cap-mb 64"
memcache_wall=$(best_wall "$stack_tmp/memcache" -attrib=false -power=false -stack-mode memcache -stack-cap-mb 64)

memory_overhead=$(awk -v on="$memory_wall" -v off="$off_wall" \
    'BEGIN { printf "%.4f", (off > 0) ? (on - off) / off : 0 }')

cat > "$outdir/BENCH_stackcache.json" <<EOF
{
  "run": "quadMC VH1 @ warmup=50000 measure=600000, best wall of 3",
  "baseline_wall_seconds": $off_wall,
  "memory_wall_seconds": $memory_wall,
  "memory_mode_overhead": $memory_overhead,
  "memory_budget": 0.02,
  "cache_wall_seconds": $cache_wall,
  "memcache_wall_seconds": $memcache_wall
}
EOF
echo "== $outdir/BENCH_stackcache.json"
cat "$outdir/BENCH_stackcache.json"

# Power/thermal tracking cost: the tracker converts per-bank counters
# into per-layer power each window and steps the transient RC model.
# The off run IS the attrib-off/power-off run above, so only the
# tracked wall is new work. The PR gate is the disabled slowdown: a
# -power=false run never attaches the tracker, so it must stay within
# 2% of that shared baseline (it is the same code path).
pt_tmp=$(mktemp -d)
echo "== power/thermal tracking on (best of 3): $attrib_args -attrib=false"
power_on_wall=$(best_wall "$pt_tmp/power_on" -attrib=false)

power_overhead=$(awk -v on="$power_on_wall" -v off="$off_wall" \
    'BEGIN { printf "%.4f", (off > 0) ? (on - off) / off : 0 }')
power_disabled_slowdown=$(awk -v on="$power_on_wall" -v off="$off_wall" \
    'BEGIN { printf "%.4f", (on > 0) ? (off - on) / on : 0 }')

cat > "$outdir/BENCH_thermal.json" <<EOF
{
  "run": "quadMC VH1 @ warmup=50000 measure=600000, best wall of 3",
  "power_on_wall_seconds": $power_on_wall,
  "power_off_wall_seconds": $off_wall,
  "power_enabled_overhead": $power_overhead,
  "power_disabled_slowdown": $power_disabled_slowdown,
  "disabled_budget": 0.02
}
EOF
echo "== $outdir/BENCH_thermal.json"
cat "$outdir/BENCH_thermal.json"

# Zero-perturb sanity: with the tracker's own power.*/thermal.* columns
# ignored, the tracked and untracked runs must agree on every metric
# (TestPowerThermalParity pins the digest; this checks the exports).
echo "== statsdiff power-on vs power-off (-ignore 'power.*,thermal.*,engine.*')"
"$dbin" -threshold 0.0001 -ignore 'power.*,thermal.*,engine.*' \
    "$attrib_off/timeseries.csv" "$pt_tmp/power_on/timeseries.csv" \
    || echo "bench: WARNING: power/thermal tracking changed shared metrics (parity bug)"

# Run-ledger cost and dedupe. The write overhead is measured against
# the shared attrib-off baseline with a fresh store per iteration
# (best_wall's rm -rf clears the store nested under the telemetry dir),
# so every iteration pays the full record write; the manifest wall
# includes it because stacksim records before the telemetry export.
ledger_tmp=$(mktemp -d)
echo "== ledger on (best of 3): $attrib_args -ledger-dir <fresh store>"
ledger_on_wall=$(best_wall "$ledger_tmp/on" -attrib=false -power=false -ledger-dir "$ledger_tmp/on/store")

ledger_overhead=$(awk -v on="$ledger_on_wall" -v off="$off_wall" \
    'BEGIN { printf "%.4f", (off > 0) ? (on - off) / off : 0 }')
ledger_gate=$(awk -v o="$ledger_overhead" 'BEGIN { print (o <= 0.02) ? "pass" : "fail" }')

# Dedupe proof: record once into a persistent store (no telemetry, so
# the warm re-run is eligible for the cache), then re-run the identical
# (config, mix, seed) and require the served-from-ledger line.
store="$ledger_tmp/store"
echo "== ledger dedupe: cold run then warm re-run of the same (config, mix, seed)"
# shellcheck disable=SC2086
"$sbin" $attrib_args -ledger-dir "$store" > "$ledger_tmp/cold.txt"
# shellcheck disable=SC2086
"$sbin" $attrib_args -ledger-dir "$store" > "$ledger_tmp/warm.txt"
if grep -q "ledger: cache hit" "$ledger_tmp/warm.txt"; then
    dedupe_status=pass
    grep "ledger: cache hit" "$ledger_tmp/warm.txt"
else
    dedupe_status=fail
fi

# Baseline-tag workflow: bless the recorded run, then gate latest
# against the blessed tag — the cross-run regression gate bench.sh
# itself now depends on.
echo "== statsdiff: pin blessed baseline, then gate latest vs blessed"
if "$dbin" -ledger-dir "$store" -a latest -b latest -threshold 0.05 -pin blessed > /dev/null &&
    "$dbin" -ledger-dir "$store" -a latest -b blessed -threshold 0.05; then
    tag_gate=pass
else
    tag_gate=fail
fi

cat > "$outdir/BENCH_ledger.json" <<EOF
{
  "run": "quadMC VH1 @ warmup=50000 measure=600000, best wall of 3",
  "ledger_on_wall_seconds": $ledger_on_wall,
  "ledger_off_wall_seconds": $off_wall,
  "ledger_write_overhead": $ledger_overhead,
  "overhead_budget": 0.02,
  "overhead_gate_status": "$ledger_gate",
  "dedupe_cache_hit": "$dedupe_status",
  "baseline_tag_gate": "$tag_gate"
}
EOF
echo "== $outdir/BENCH_ledger.json"
cat "$outdir/BENCH_ledger.json"
if [ "$ledger_gate" = fail ]; then
    echo "bench: WARNING: ledger write overhead $ledger_overhead above 2% budget"
fi
if [ "$dedupe_status" = fail ] || [ "$tag_gate" = fail ]; then
    echo "bench: ERROR: ledger dedupe=$dedupe_status baseline_tag_gate=$tag_gate"
    exit 1
fi

# Sim-farm recovery and dedupe. Short leases and a tight checkpoint
# interval shrink the failover window to something a bench run can
# afford; production defaults are far larger. Every spawned process is
# killed by its own PID — never by name — so a concurrent bench or an
# operator's real farm is untouched.
echo "== building cmd/simfarm"
fbin=$(mktemp -d)/simfarm
go build -o "$fbin" ./cmd/simfarm

farm_tmp=$(mktemp -d)
farm_sweep="-exp fig4 -warmup 20000 -measure 60000 -j 8"
farm_pids=""
farm_cleanup() {
    for pid in $farm_pids; do
        kill "$pid" 2>/dev/null || true
    done
}
trap farm_cleanup EXIT

# start_farm <dir> starts a coordinator (fresh store under <dir>) and
# two workers, exporting farm_addr and per-process PIDs.
start_farm() {
    dir=$1
    "$fbin" coordinator -addr 127.0.0.1:0 -ledger-dir "$dir/store" \
        -lease 2s -backoff-base 100ms -backoff-max 2s > "$dir/coord.log" 2>&1 &
    coord_pid=$!
    farm_pids="$farm_pids $coord_pid"
    farm_addr=""
    for _ in $(seq 1 50); do
        farm_addr=$(awk '/serving on/ { print $NF }' "$dir/coord.log" 2>/dev/null || true)
        [ -n "$farm_addr" ] && break
        sleep 0.1
    done
    if [ -z "$farm_addr" ]; then
        echo "bench: ERROR: coordinator did not come up"
        cat "$dir/coord.log"
        exit 1
    fi
    "$fbin" worker -coordinator "$farm_addr" -name w1 -poll 50ms \
        -checkpoint-every 20000 > "$dir/w1.log" 2>&1 &
    w1_pid=$!
    "$fbin" worker -coordinator "$farm_addr" -name w2 -poll 50ms \
        -checkpoint-every 20000 > "$dir/w2.log" 2>&1 &
    w2_pid=$!
    farm_pids="$farm_pids $w1_pid $w2_pid"
    sleep 0.5
}

# Local reference: same sweep, no farm — the stdout parity baseline.
echo "== farm reference (local): $farm_sweep"
# shellcheck disable=SC2086 # $farm_sweep is a word list by design
"$bin" $farm_sweep -perf-json "$farm_tmp/perf_local.json" > "$farm_tmp/local.txt" 2> /dev/null

echo "== farm uninterrupted + warm: $farm_sweep -farm <coordinator>"
mkdir -p "$farm_tmp/a"
start_farm "$farm_tmp/a"
# shellcheck disable=SC2086
"$bin" $farm_sweep -farm "$farm_addr" -perf-json "$farm_tmp/perf_farm.json" > "$farm_tmp/farm.txt" 2> /dev/null
farm_wall=$(json_field "$farm_tmp/perf_farm.json" wall_seconds)
cells=$(json_field "$farm_tmp/perf_farm.json" runs)
"$fbin" status -coordinator "$farm_addr" > "$farm_tmp/status_cold.json"
cold_dispatched=$(json_field "$farm_tmp/status_cold.json" dispatched_total)
# Warm re-run of the identical cells: every submit must collapse onto
# a done job — zero new dispatches.
# shellcheck disable=SC2086
"$bin" $farm_sweep -farm "$farm_addr" -perf-json "$farm_tmp/perf_warm.json" > "$farm_tmp/warm.txt" 2> /dev/null
"$fbin" status -coordinator "$farm_addr" > "$farm_tmp/status_warm.json"
warm_dispatched=$(json_field "$farm_tmp/status_warm.json" dispatched_total)
warm_delta=$((warm_dispatched - cold_dispatched))
warm_gate=$([ "$warm_delta" -eq 0 ] && echo pass || echo fail)
for pid in $farm_pids; do kill "$pid" 2>/dev/null || true; done
farm_pids=""

echo "== farm recovery: $farm_sweep -farm <coordinator>, one worker kill -9'd mid-sweep"
mkdir -p "$farm_tmp/b"
start_farm "$farm_tmp/b"
kill_delay=$(awk -v w="$farm_wall" 'BEGIN { printf "%.1f", (w > 1) ? w / 2 : 0.5 }')
# shellcheck disable=SC2086
"$bin" $farm_sweep -farm "$farm_addr" -perf-json "$farm_tmp/perf_kill.json" > "$farm_tmp/kill.txt" 2> /dev/null &
run_pid=$!
sleep "$kill_delay"
kill -9 "$w1_pid" 2>/dev/null || true
if wait "$run_pid"; then kill_rc=0; else kill_rc=$?; fi
kill_wall=$(json_field "$farm_tmp/perf_kill.json" wall_seconds)
"$fbin" status -coordinator "$farm_addr" > "$farm_tmp/status_kill.json"
kill_done=$(json_field "$farm_tmp/status_kill.json" jobs_done)
kill_quarantined=$(json_field "$farm_tmp/status_kill.json" jobs_quarantined)
kill_expirations=$(json_field "$farm_tmp/status_kill.json" expirations_total)
kill_completed=$(json_field "$farm_tmp/status_kill.json" completed_total)
for pid in $farm_pids; do kill "$pid" 2>/dev/null || true; done
farm_pids=""
trap - EXIT

# Correctness: the killed-worker sweep completed every cell exactly
# once, and all three farm runs' stdout matches the local run's.
cells_gate=pass
if [ "$kill_rc" -ne 0 ] || [ "$kill_done" -ne "$cells" ] ||
    [ "$kill_quarantined" -ne 0 ] || [ "$kill_completed" -ne "$cells" ]; then
    cells_gate=fail
fi
parity_gate=pass
for f in farm warm kill; do
    if ! cmp -s "$farm_tmp/local.txt" "$farm_tmp/$f.txt"; then
        parity_gate=fail
        echo "bench: farm $f stdout diverges from local:"
        diff "$farm_tmp/local.txt" "$farm_tmp/$f.txt" | head -20 || true
    fi
done
recovery_ratio=$(awk -v k="$kill_wall" -v u="$farm_wall" \
    'BEGIN { printf "%.3f", (u > 0) ? k / u : 0 }')
recovery_gate=$(awk -v r="$recovery_ratio" 'BEGIN { print (r <= 1.5) ? "pass" : "fail" }')

cat > "$outdir/BENCH_farm.json" <<EOF
{
  "sweep": "fig4 @ warmup=20000 measure=60000, coordinator + 2 workers (lease 2s, checkpoint-every 20000)",
  "cells": $cells,
  "uninterrupted_wall_seconds": $farm_wall,
  "kill_one_worker_wall_seconds": $kill_wall,
  "recovery_overhead_ratio": $recovery_ratio,
  "recovery_gate": 1.5,
  "recovery_gate_status": "$recovery_gate",
  "kill_run_expirations": $kill_expirations,
  "kill_run_jobs_done": $kill_done,
  "kill_run_quarantined": $kill_quarantined,
  "cells_exactly_once": "$cells_gate",
  "warm_dispatched_delta": $warm_delta,
  "warm_dedupe_gate_status": "$warm_gate",
  "stdout_parity": "$parity_gate"
}
EOF
echo "== $outdir/BENCH_farm.json"
cat "$outdir/BENCH_farm.json"
if [ "$recovery_gate" = fail ]; then
    echo "bench: WARNING: kill-one-worker wall ${kill_wall}s exceeds 1.5x uninterrupted ${farm_wall}s"
fi
if [ "$cells_gate" = fail ] || [ "$warm_gate" = fail ] || [ "$parity_gate" = fail ]; then
    echo "bench: ERROR: farm cells_exactly_once=$cells_gate warm_dedupe=$warm_gate stdout_parity=$parity_gate"
    exit 1
fi

# Many-core subsystem: seed-mode identity and 64-core wall budget.
#
# Seed-mode identity: the coherence/NoC machinery must be invisible
# until asked for. A run with an explicit `-coherence shared` goes
# through the new flag-application path but must produce the exact
# config the plain spelling does — proven end to end by the ledger:
# the warm run's RunID (a content address over config + workload)
# collapses onto the cold run's record and is served as a cache hit.
# statsdiff then gates latest-vs-blessed at a 0.01% threshold.
mc_tmp=$(mktemp -d)
mc_store="$mc_tmp/store"
mc_args="-config quadMC -mix VH1 -warmup 20000 -measure 60000"
echo "== manycore seed-identity: plain run, then -coherence shared re-run"
# shellcheck disable=SC2086 # $mc_args is a word list by design
"$sbin" $mc_args -ledger-dir "$mc_store" > "$mc_tmp/cold.txt"
# shellcheck disable=SC2086
"$sbin" $mc_args -coherence shared -ledger-dir "$mc_store" > "$mc_tmp/warm.txt"
if grep -q "ledger: cache hit" "$mc_tmp/warm.txt"; then
    seed_flag_gate=pass
    grep "ledger: cache hit" "$mc_tmp/warm.txt"
else
    seed_flag_gate=fail
fi
if "$dbin" -ledger-dir "$mc_store" -a latest -b latest -threshold 0.0001 -pin mc-blessed > /dev/null &&
    "$dbin" -ledger-dir "$mc_store" -a latest -b mc-blessed -threshold 0.0001; then
    seed_stats_gate=pass
else
    seed_stats_gate=fail
fi

# 64-core MESI/mesh run under a wall budget. The budget is deliberately
# generous (the measured wall is ~1s on a 2GHz core): it catches a
# complexity blow-up — a protocol livelock, a mesh routing loop, an
# O(cores^2) tick — not machine-to-machine noise. The idle-skip engine
# must still find skippable cycles: at 64 cores fully-idle cycles are
# rare but a zero means the sleep/wake discipline regressed to
# tick-everything.
mc64_budget=120
mc64_args="-config quadMC -coherence mesi -cores 64 -bench read-mostly-shared -warmup 20000 -measure 60000"
echo "== manycore 64-core run: $mc64_args"
# shellcheck disable=SC2086
"$sbin" $mc64_args -telemetry-dir "$mc_tmp/tel64" > "$mc_tmp/mc64.txt"
mc64_wall=$(json_field "$mc_tmp/tel64/manifest.json" wall_seconds)
mc64_skipped=$(awk '/^engine:/ { for (i = 1; i <= NF; i++) if ($(i+1) == "cycles" && $(i+2) == "skipped") print $i }' "$mc_tmp/mc64.txt")
mc64_hmipc=$(awk '/^HMIPC:/ { print $2 }' "$mc_tmp/mc64.txt")
mc64_wall_gate=$(awk -v w="$mc64_wall" -v b="$mc64_budget" 'BEGIN { print (w > 0 && w <= b) ? "pass" : "fail" }')
mc64_skip_gate=$([ "${mc64_skipped:-0}" -gt 0 ] && echo pass || echo fail)

cat > "$outdir/BENCH_manycore.json" <<EOF
{
  "seed_identity_run": "quadMC VH1 @ warmup=20000 measure=60000",
  "seed_flag_ledger_cache_hit": "$seed_flag_gate",
  "seed_statsdiff_gate_status": "$seed_stats_gate",
  "seed_statsdiff_threshold": 0.0001,
  "manycore_run": "quadMC -coherence mesi -cores 64 read-mostly-shared @ warmup=20000 measure=60000",
  "manycore_wall_seconds": $mc64_wall,
  "manycore_wall_budget_seconds": $mc64_budget,
  "manycore_wall_gate_status": "$mc64_wall_gate",
  "manycore_hmipc": $mc64_hmipc,
  "manycore_cycles_skipped": ${mc64_skipped:-0},
  "manycore_skip_gate_status": "$mc64_skip_gate"
}
EOF
echo "== $outdir/BENCH_manycore.json"
cat "$outdir/BENCH_manycore.json"
if [ "$seed_flag_gate" = fail ] || [ "$seed_stats_gate" = fail ]; then
    echo "bench: ERROR: seed-mode identity broken: ledger_cache_hit=$seed_flag_gate statsdiff=$seed_stats_gate"
    exit 1
fi
if [ "$mc64_wall_gate" = fail ] || [ "$mc64_skip_gate" = fail ]; then
    echo "bench: ERROR: 64-core run wall=${mc64_wall}s (budget ${mc64_budget}s) skipped=$mc64_skipped"
    exit 1
fi
