#!/usr/bin/env sh
# Performance harness for stackedsim.
#
# Two measurements:
#   1. The root micro/figure benchmarks (single-run hot-loop speed) —
#      compare ns/op against a previous run to catch single-run
#      regressions (the PR gate is within +/-2%).
#   2. A reduced-window experiment sweep, sequential (-j 1) vs
#      parallel (-j 0 = GOMAXPROCS), emitting BENCH_sweep.json with
#      wall seconds, runs/sec and the measured speedup.
#
# Usage: scripts/bench.sh [outdir]   (default outdir: results)
#
# On a single-core machine the parallel sweep degenerates to the
# sequential one, so the reported speedup is ~1.0; the >=2x expectation
# only applies on >=4-core machines.
set -eu
cd "$(dirname "$0")/.."

outdir=${1:-results}
mkdir -p "$outdir"

echo "== root benchmarks (go test -bench . -benchtime 1x)"
go test -run '^$' -bench . -benchtime 1x . | tee "$outdir/BENCH_root.txt"

echo "== building cmd/experiments"
bin=$(mktemp -d)/experiments
go build -o "$bin" ./cmd/experiments

sweep="-exp fig4,fig6b,table2b -warmup 20000 -measure 60000"
echo "== sequential sweep (-j 1): $sweep"
# shellcheck disable=SC2086 # $sweep is a word list by design
"$bin" $sweep -j 1 -perf-json "$outdir/perf_seq.json" > /dev/null
echo "== parallel sweep (-j 0 = GOMAXPROCS): $sweep"
# shellcheck disable=SC2086
"$bin" $sweep -j 0 -perf-json "$outdir/perf_par.json" > /dev/null

# Merge the two perf reports into BENCH_sweep.json. awk keeps the
# script dependency-free (jq may be absent on minimal builders).
json_field() {
    awk -F'[:,]' -v key="\"$2\"" '$1 ~ key { gsub(/[ \t]/, "", $2); print $2 }' "$1"
}
seq_wall=$(json_field "$outdir/perf_seq.json" wall_seconds)
par_wall=$(json_field "$outdir/perf_par.json" wall_seconds)
runs=$(json_field "$outdir/perf_par.json" runs)
gomaxprocs=$(json_field "$outdir/perf_par.json" gomaxprocs)
workers=$(json_field "$outdir/perf_par.json" workers)
speedup=$(awk -v s="$seq_wall" -v p="$par_wall" 'BEGIN { printf "%.3f", (p > 0) ? s / p : 0 }')
seq_rps=$(awk -v r="$runs" -v w="$seq_wall" 'BEGIN { printf "%.3f", (w > 0) ? r / w : 0 }')
par_rps=$(awk -v r="$runs" -v w="$par_wall" 'BEGIN { printf "%.3f", (w > 0) ? r / w : 0 }')

cat > "$outdir/BENCH_sweep.json" <<EOF
{
  "sweep": "fig4,fig6b,table2b @ warmup=20000 measure=60000",
  "runs": $runs,
  "gomaxprocs": $gomaxprocs,
  "workers_parallel": $workers,
  "sequential_wall_seconds": $seq_wall,
  "parallel_wall_seconds": $par_wall,
  "sequential_runs_per_sec": $seq_rps,
  "parallel_runs_per_sec": $par_rps,
  "parallel_speedup": $speedup
}
EOF
echo "== $outdir/BENCH_sweep.json"
cat "$outdir/BENCH_sweep.json"
