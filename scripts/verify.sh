#!/usr/bin/env sh
# Tier-1 verification for stackedsim.
#
# Extends the baseline `go build ./... && go test ./...` gate with vet
# and a race-detector pass over the packages that carry cross-cutting
# state (the simulation engine and the telemetry layer, whose sampler
# and tracer observe every component).
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/telemetry/... ./internal/sim/..."
go test -race ./internal/telemetry/... ./internal/sim/...

echo "verify: OK"
