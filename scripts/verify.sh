#!/usr/bin/env sh
# Tier-1 verification for stackedsim.
#
# Extends the baseline `go build ./... && go test ./...` gate with vet
# and a race-detector pass over the packages that carry cross-cutting
# state: the simulation engine, the telemetry layer (whose sampler and
# tracer observe every component), the monitor (HTTP handlers reading
# snapshots the simulation goroutine publishes), the attribution layer,
# and the experiment harness (whose Runner fans simulations over a
# worker pool; the concurrent-caller and parity tests only bite under
# -race). Core runs -short to skip the real-window stability sweep,
# which the plain pass already covers; the -short pass also exercises
# the robustness tests (cancellation, per-run deadlines, panic
# isolation, checkpoint/resume) under the race detector, where a data
# race between a cancelled worker and the collector would surface.
# internal/fault rides along because its views are shared with every
# memory component a run touches, and internal/stackcache because its
# layer sits on the hot path between the L2 and every controller.
# internal/power and internal/thermal feed the power/thermal tracker
# whose summary the monitor serves from handler goroutines, so they run
# under the race detector alongside it. internal/mem and internal/mshr
# carry the pooled request / MSHR-entry free lists: their lifecycle
# tests (reuse, double-release panics) run here so a pooling bug that
# only manifests with the race detector's reordering still fails
# tier-1. internal/ledger joins the race pass because the Runner's
# workers record runs into one shared store (the O_APPEND index and
# tag writes are mutex-guarded) while monitor handlers read it.
# internal/farm joins because the coordinator serves concurrent HTTP
# handlers over one job table and the worker runs a heartbeat
# goroutine beside the simulating one; the failover and
# kill-worker-mid-run tests only bite under -race.
# internal/coherence and internal/noc join because the directory
# protocol suite asserts no-lost-writeback invariants whose bookkeeping
# (pooled messages, deferred queues, writeback buffers) would corrupt
# subtly under reordering; the suite is required to pass under -race.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/telemetry/... ./internal/sim/... ./internal/monitor/... ./internal/ledger/... ./internal/farm/... ./internal/attrib/... ./internal/fault/... ./internal/stackcache/... ./internal/power/... ./internal/thermal/... ./internal/mem/... ./internal/mshr/... ./internal/coherence/... ./internal/noc/..."
go test -race ./internal/telemetry/... ./internal/sim/... ./internal/monitor/... ./internal/ledger/... ./internal/farm/... ./internal/attrib/... ./internal/fault/... ./internal/stackcache/... ./internal/power/... ./internal/thermal/... ./internal/mem/... ./internal/mshr/... ./internal/coherence/... ./internal/noc/...

echo "== go test -race -short ./internal/core/..."
go test -race -short ./internal/core/...

echo "verify: OK"
