#!/usr/bin/env sh
# Tier-1 verification for stackedsim.
#
# Extends the baseline `go build ./... && go test ./...` gate with vet
# and a race-detector pass over the packages that carry cross-cutting
# state: the simulation engine, the telemetry layer (whose sampler and
# tracer observe every component), the monitor (HTTP handlers reading
# snapshots the simulation goroutine publishes), the attribution layer,
# and the experiment harness (whose Runner fans simulations over a
# worker pool; the concurrent-caller and parity tests only bite under
# -race). Core runs -short to skip the real-window stability sweep,
# which the plain pass already covers.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/telemetry/... ./internal/sim/... ./internal/monitor/... ./internal/attrib/..."
go test -race ./internal/telemetry/... ./internal/sim/... ./internal/monitor/... ./internal/attrib/...

echo "== go test -race -short ./internal/core/..."
go test -race -short ./internal/core/...

echo "verify: OK"
